"""Time Interval Encoder (paper Section 4.3, Eq. 4-11 and Figure 6).

Encodes one time interval [t[1], t[-1]] into a fixed-length vector tcode:

1. normalise both endpoints into (slot, remainder) pairs;
2. look up the embeddings of the Δd covered slots (Eq. 4) and stack them
   into a (Δd, d_t) matrix Dt;
3. run the ResNet CNN block (three convolutions with BatchNorm + ReLU and a
   residual add, Eq. 5-8);
4. average-pool over the Δd axis (Eq. 10);
5. concatenate the two remainders and apply a two-layer MLP (Eq. 11).

Batching: intervals in one batch cover different numbers of slots, so the
slot matrices are padded to the batch maximum and the average pool masks
the padding.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.contracts import shaped
from ..nn import (
    IntervalResNetBlock, Module, Tensor, TwoLayerMLP, concat,
)
from ..temporal.timeslot import TimeSlotConfig
from .config import DeepODConfig
from .embeddings import TimeSlotEmbedding


class TimeIntervalEncoder(Module):
    """Interval -> tcode (batched)."""

    def __init__(self, config: DeepODConfig,
                 slot_embedding: TimeSlotEmbedding,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config
        self.slot_embedding = slot_embedding
        self.resnet = IntervalResNetBlock(rng=rng)
        # Eq. 11: input is Z5 (d_t) concatenated with the two remainders.
        self.mlp = TwoLayerMLP(config.d_t + 2, config.d1_m, config.d2_m,
                               rng=rng)

    @property
    def slot_config(self) -> TimeSlotConfig:
        return self.slot_embedding.slot_config

    @shaped("_ -> (B, config.d2_m)")
    def forward(self, intervals: Sequence[Tuple[float, float]]) -> Tensor:
        """Encode a batch of (start, end) timestamp intervals.

        Returns a (batch, d2_m) tensor of tcodes.
        """
        if not len(intervals):
            raise ValueError("empty interval batch")
        cfg = self.slot_config
        slot_lists: List[np.ndarray] = []
        remainders = np.zeros((len(intervals), 2))
        for i, (t_start, t_end) in enumerate(intervals):
            if t_end < t_start:
                raise ValueError("interval end precedes start")
            slots = np.fromiter(cfg.interval_slots(t_start, t_end),
                                dtype=np.int64)
            slot_lists.append(slots)
            # Remainders normalised to [0, 1) so they do not dominate.
            remainders[i, 0] = cfg.remainder_of(t_start) / cfg.slot_seconds
            remainders[i, 1] = cfg.remainder_of(t_end) / cfg.slot_seconds

        max_len = max(len(s) for s in slot_lists)
        batch = len(intervals)
        # Pad slot indices with each interval's last slot; the pooling mask
        # below removes the padded rows from the average.
        padded = np.zeros((batch, max_len), dtype=np.int64)
        mask = np.zeros((batch, max_len))
        for i, slots in enumerate(slot_lists):
            padded[i, :len(slots)] = slots
            padded[i, len(slots):] = slots[-1]
            mask[i, :len(slots)] = 1.0

        # (batch * max_len,) -> (batch, 1, max_len, d_t)
        emb = self.slot_embedding.lookup_slots(padded.reshape(-1))
        d_t = self.config.d_t
        dt_tensor = emb.reshape(batch, 1, max_len, d_t)
        row_mask = Tensor(mask[:, None, :, None])
        z4 = self.resnet(dt_tensor, mask=row_mask)        # Eq. 5-8
        z4 = z4.reshape(batch, max_len, d_t)
        # Masked average pool over the slot axis (Eq. 10).
        mask_t = Tensor(mask[:, :, None])
        counts = Tensor(mask.sum(axis=1, keepdims=True))
        z5 = (z4 * mask_t).sum(axis=1) / counts
        z6 = concat([z5, Tensor(remainders)], axis=1)     # (batch, d_t + 2)
        return self.mlp(z6)                               # Eq. 11
