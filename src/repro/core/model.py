"""DeepOD model assembly (paper Section 3, Figure 3).

Three modules: M_O (OD encoder -> code), M_T (Trajectory Encoder ->
stcode), M_E (estimator MLP2 -> travel time).  Training minimises

    loss = w * auxiliaryloss + (1 - w) * mainloss

where auxiliaryloss is the batch Euclidean distance between code and
stcode (binding each OD input to its affiliated trajectory) and mainloss is
the MAE between estimated and actual travel time.  At prediction time only
M_O and M_E run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.contracts import shaped
from ..nn import (
    Module, Tensor, TwoLayerMLP, euclidean_loss, euclidean_loss_fused,
    mae_loss, mae_loss_fused,
)
from ..trajectory.model import MatchedTrajectory, ODInput
from .config import DeepODConfig
from .embeddings import RoadSegmentEmbedding, TimeSlotEmbedding
from .external_encoder import ExternalFeaturesEncoder
from .interval_encoder import TimeIntervalEncoder
from .od_encoder import ODEncoder
from .trajectory_encoder import TrajectoryEncoder


@dataclass
class DeepODLosses:
    """The three loss terms of Algorithm 1 for one batch."""

    total: Tensor
    main: float
    auxiliary: float


class TravelTimeEstimatorHead(Module):
    """M_E: code -> scalar travel time (Eq. 20, MLP2)."""

    def __init__(self, config: DeepODConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config
        self.mlp2 = TwoLayerMLP(config.d8_m, config.d9_m, 1, rng=rng,
                                engine=config.nn_engine)

    @shaped("(B, config.d8_m) -> (B, 1)")
    def forward(self, code: Tensor) -> Tensor:
        return self.mlp2(code)


class DeepOD(Module):
    """The full model: M_O + M_T + M_E with shared embeddings."""

    def __init__(self, config: DeepODConfig,
                 road_embedding: RoadSegmentEmbedding,
                 slot_embedding: TimeSlotEmbedding,
                 external_encoder: Optional[ExternalFeaturesEncoder] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.road_embedding = road_embedding
        self.slot_embedding = slot_embedding
        self.interval_encoder = TimeIntervalEncoder(
            config, slot_embedding, rng=rng)
        if config.use_trajectory_encoder:
            self.trajectory_encoder: Optional[TrajectoryEncoder] = \
                TrajectoryEncoder(config, road_embedding,
                                  self.interval_encoder, rng=rng)
        else:
            self.trajectory_encoder = None
        if config.use_external_features and external_encoder is None:
            external_encoder = ExternalFeaturesEncoder(config, rng=rng)
        self.od_encoder = ODEncoder(config, road_embedding, slot_embedding,
                                    external_encoder if
                                    config.use_external_features else None,
                                    rng=rng)
        self.estimator = TravelTimeEstimatorHead(config, rng=rng)
        # Target normalisation statistics (set by the trainer).
        self.register_buffer("target_mean", np.array([0.0]))
        self.register_buffer("target_std", np.array([1.0]))

    # ------------------------------------------------------------------
    def set_target_stats(self, mean: float, std: float) -> None:
        if std <= 0:
            raise ValueError("target std must be positive")
        self.update_buffer("target_mean", np.array([float(mean)]))
        self.update_buffer("target_std", np.array([float(std)]))

    def _normalize(self, y: np.ndarray) -> np.ndarray:
        if not self.config.normalize_targets:
            return y
        return (y - self.target_mean[0]) / self.target_std[0]

    def _denormalize(self, y: np.ndarray) -> np.ndarray:
        if not self.config.normalize_targets:
            return y
        return y * self.target_std[0] + self.target_mean[0]

    # ------------------------------------------------------------------
    def encode_od(self, ods: Sequence[ODInput],
                  speed_matrices: Optional[np.ndarray] = None) -> Tensor:
        """M_O: code for a batch of OD inputs."""
        return self.od_encoder(ods, speed_matrices)

    def encode_trajectories(
            self, trajectories: Sequence[MatchedTrajectory]) -> Tensor:
        """M_T: stcode for a batch of trajectories."""
        if self.trajectory_encoder is None:
            raise RuntimeError(
                "trajectory encoder disabled (N-st variant)")
        return self.trajectory_encoder(trajectories)

    def training_losses(self, ods: Sequence[ODInput],
                        trajectories: Sequence[Optional[MatchedTrajectory]],
                        travel_times: np.ndarray,
                        speed_matrices: Optional[np.ndarray] = None
                        ) -> DeepODLosses:
        """Algorithm 1 lines 7-12 for one mini-batch."""
        fast = self.config.nn_engine == "fast"
        code = self.encode_od(ods, speed_matrices)
        pred = self.estimator(code)
        targets = self._normalize(
            np.asarray(travel_times, dtype=float))[:, None]
        main = (mae_loss_fused if fast else mae_loss)(pred, Tensor(targets))

        w = self.config.aux_weight
        use_aux = (self.trajectory_encoder is not None and w > 0.0
                   and all(t is not None for t in trajectories))
        if use_aux:
            stcode = self.encode_trajectories(trajectories)
            aux = (euclidean_loss_fused if fast else euclidean_loss)(
                code, stcode) * self.config.aux_scale
            total = aux * w + main * (1.0 - w)
            aux_val = aux.item()
        else:
            total = main
            aux_val = 0.0
        return DeepODLosses(total=total, main=main.item(),
                            auxiliary=aux_val)

    def predict(self, ods: Sequence[ODInput],
                speed_matrices: Optional[np.ndarray] = None) -> np.ndarray:
        """Online estimation (Algorithm 1's Estimation function).

        Only M_O and M_E are used; returns travel times in seconds.
        """
        was_training = self.training
        self.eval()
        try:
            code = self.encode_od(ods, speed_matrices)
            pred = self.estimator(code)
        finally:
            self.train(was_training)
        out = self._denormalize(pred.data[:, 0])
        # Travel times are physically positive; clip tiny/negative outputs.
        return np.maximum(out, 1.0)
