"""OD input encoder M_O (paper Section 4.6, Eq. 19).

Builds Z9 = concat(D^s_1, D^s_n, D^t, ocode, r[1], r[-1], t_r) — the
embeddings of the matched origin/destination segments, the departure-time
slot embedding, the external-feature code, the two position ratios and the
normalised time remainder — and applies MLP1 to produce code.

Ablation behaviour follows the model variants of Section 6.4.2/6.5:
spatial/temporal/external contributions are zeroed when disabled, and the
T-stamp variant replaces the slot embedding with the raw timestamp value.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.contracts import shaped
from ..nn import Module, Tensor, TwoLayerMLP, concat
from ..trajectory.model import ODInput
from .config import DeepODConfig
from .embeddings import RoadSegmentEmbedding, TimeSlotEmbedding
from .external_encoder import ExternalFeaturesEncoder


class ODEncoder(Module):
    """Batch of OD inputs -> code (batch, d8_m)."""

    def __init__(self, config: DeepODConfig,
                 road_embedding: RoadSegmentEmbedding,
                 slot_embedding: TimeSlotEmbedding,
                 external_encoder: Optional[ExternalFeaturesEncoder],
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config
        self.road_embedding = road_embedding
        self.slot_embedding = slot_embedding
        if config.use_external_features and external_encoder is None:
            raise ValueError(
                "external features enabled but no encoder supplied")
        if external_encoder is not None:
            self.external_encoder = external_encoder
        else:
            self.external_encoder = None
        in_width = (2 * config.d_s          # D^s_1, D^s_n
                    + config.d_t            # D^t
                    + config.d6_m           # ocode
                    + 3)                    # r[1], r[-1], t_r
        if config.use_timestamp_directly:
            in_width += 1                   # raw timestamp feature (T-stamp)
        self.mlp1 = TwoLayerMLP(in_width, config.d7_m, config.d8_m, rng=rng,
                                engine=config.nn_engine)

    @shaped("_ -> (B, config.d8_m)")
    def forward(self, ods: Sequence[ODInput],
                speed_matrices: Optional[np.ndarray] = None) -> Tensor:
        if not len(ods):
            raise ValueError("empty OD batch")
        cfg = self.config
        batch = len(ods)
        for od in ods:
            if not od.is_matched:
                raise ValueError(
                    "OD inputs must be map-matched before encoding")

        # Spatial part: embeddings of origin/destination segments.
        if cfg.use_spatial_encoding:
            origin = self.road_embedding(
                np.array([od.origin_edge for od in ods]))
            dest = self.road_embedding(
                np.array([od.destination_edge for od in ods]))
        else:
            origin = Tensor(np.zeros((batch, cfg.d_s)))
            dest = Tensor(np.zeros((batch, cfg.d_s)))

        # Temporal part: slot embedding of the departure time + remainder
        # (vectorised Eq. 2-3 over the batch).
        slot_cfg = self.slot_embedding.slot_config
        departs = np.fromiter((od.depart_time for od in ods),
                              dtype=np.float64, count=batch)
        slots = slot_cfg.slots_of(departs)
        remainders = slot_cfg.remainders_of(departs) / slot_cfg.slot_seconds
        if cfg.use_temporal_encoding and not cfg.use_timestamp_directly:
            d_t = self.slot_embedding.lookup_slots(slots)
        else:
            d_t = Tensor(np.zeros((batch, cfg.d_t)))

        # External part.
        if cfg.use_external_features and self.external_encoder is not None:
            if speed_matrices is None:
                raise ValueError(
                    "speed matrices required when external features are on")
            ocode = self.external_encoder(
                [od.weather for od in ods], speed_matrices)
        else:
            ocode = Tensor(np.zeros((batch, cfg.d6_m)))

        floats = np.stack([
            np.array([od.ratio_start for od in ods]),
            np.array([od.ratio_end for od in ods]),
            remainders,
        ], axis=1)

        pieces = [origin, dest, d_t, ocode, Tensor(floats)]
        if cfg.use_timestamp_directly:
            # T-stamp: the raw departure timestamp as a (large) float — the
            # paper shows this dominates and degrades accuracy (Table 7).
            stamps = np.array([[od.depart_time] for od in ods])
            pieces.append(Tensor(stamps))
        z9 = concat(pieces, axis=1)
        return self.mlp1(z9)                               # Eq. 19
