"""Ablation and embedding variants of DeepOD (Sections 6.4.2 and 6.5).

Effectiveness ablations (Table 4):
  * ``N-st``    — remove the trajectory encoding (no auxiliary task);
  * ``N-sp``    — remove the spatial encoding of road segments;
  * ``N-tp``    — remove the temporal encoding of time intervals;
  * ``N-other`` — remove the external feature encoding.

Embedding variants (Table 7):
  * ``T-one``   — time-slot embedding initialised randomly (no graph init);
  * ``T-day``   — temporal graph over one day only (no weekly periodicity);
  * ``T-stamp`` — raw timestamps instead of slot embeddings;
  * ``R-one``   — road-segment embedding initialised randomly.
"""

from __future__ import annotations

from typing import Dict

from .config import DeepODConfig

VARIANT_NAMES = (
    "DeepOD", "N-st", "N-sp", "N-tp", "N-other",
    "T-one", "T-day", "T-stamp", "R-one",
)


def variant_config(base: DeepODConfig, name: str) -> DeepODConfig:
    """Derive the configuration of a named variant from a base config."""
    if name == "DeepOD":
        return base
    if name == "N-st":
        return base.with_overrides(use_trajectory_encoder=False)
    if name == "N-sp":
        return base.with_overrides(use_spatial_encoding=False)
    if name == "N-tp":
        return base.with_overrides(use_temporal_encoding=False)
    if name == "N-other":
        return base.with_overrides(use_external_features=False)
    if name == "T-one":
        return base.with_overrides(init_slot_embedding="onehot")
    if name == "T-day":
        return base.with_overrides(temporal_graph="daily")
    if name == "T-stamp":
        return base.with_overrides(use_timestamp_directly=True)
    if name == "R-one":
        return base.with_overrides(init_road_embedding="onehot")
    raise ValueError(f"unknown variant {name!r}; choose from {VARIANT_NAMES}")


def all_ablation_configs(base: DeepODConfig) -> Dict[str, DeepODConfig]:
    """The Table 4 model column: four ablations plus full DeepOD."""
    return {name: variant_config(base, name)
            for name in ("N-st", "N-sp", "N-tp", "N-other", "DeepOD")}


def all_embedding_variant_configs(base: DeepODConfig
                                  ) -> Dict[str, DeepODConfig]:
    """The Table 7 variants."""
    return {name: variant_config(base, name)
            for name in ("T-one", "T-day", "T-stamp", "R-one")}
