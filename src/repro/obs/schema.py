"""Schema validation for the observability exports.

Two JSON artefacts leave the process: span-tree traces (``--trace``)
and metrics-registry snapshots (``--metrics-out`` / ``GET /metrics``).
Both are consumed by tooling — the CI obs-smoke job, the golden tests,
dashboards — so their shape is validated here, fail-closed, with plain
``ValueError``s naming the offending path.  Stdlib only.
"""

from __future__ import annotations

import json
from typing import Dict

from .tracing import TRACE_SCHEMA

_SPAN_KEYS = {"name", "start_unix", "duration_s", "thread", "attrs",
              "counters", "children"}
_HIST_KEYS = {"count", "mean", "p50", "p95", "p99", "max"}


def _fail(path: str, message: str) -> None:
    raise ValueError(f"{path}: {message}")


def _validate_span(span: Dict, path: str) -> None:
    if not isinstance(span, dict):
        _fail(path, "span must be an object")
    missing = _SPAN_KEYS - set(span)
    if missing:
        _fail(path, f"span missing keys {sorted(missing)}")
    if not isinstance(span["name"], str) or not span["name"]:
        _fail(path, "span name must be a non-empty string")
    for key in ("start_unix", "duration_s"):
        if not isinstance(span[key], (int, float)):
            _fail(path, f"{key} must be a number")
    if span["duration_s"] < 0:
        _fail(path, "duration_s must be >= 0")
    if not isinstance(span["thread"], str):
        _fail(path, "thread must be a string")
    if not isinstance(span["attrs"], dict):
        _fail(path, "attrs must be an object")
    if not isinstance(span["counters"], dict):
        _fail(path, "counters must be an object")
    for name, value in span["counters"].items():
        if not isinstance(value, (int, float)):
            _fail(path, f"counter {name!r} must be a number")
    if not isinstance(span["children"], list):
        _fail(path, "children must be a list")
    for i, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{i}]")


def validate_trace(payload: Dict) -> Dict:
    """Validate a span-tree trace document; returns it unchanged."""
    if not isinstance(payload, dict):
        raise ValueError("trace must be a JSON object")
    if payload.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"trace schema must be {TRACE_SCHEMA!r} "
                         f"(got {payload.get('schema')!r})")
    if not isinstance(payload.get("created_unix"), (int, float)):
        raise ValueError("trace created_unix must be a number")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace spans must be a list")
    for i, span in enumerate(spans):
        _validate_span(span, f"spans[{i}]")
    return payload


def validate_metrics_snapshot(payload: Dict) -> Dict:
    """Validate a MetricsRegistry snapshot; returns it unchanged.

    This is the *serving* snapshot schema too (the shim contract): the
    promoted registry must keep emitting exactly this shape.
    """
    if not isinstance(payload, dict):
        raise ValueError("snapshot must be a JSON object")
    for key in ("counters", "histograms"):
        if not isinstance(payload.get(key), dict):
            raise ValueError(f"snapshot {key!r} must be an object")
    for name, value in payload["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise ValueError(
                f"counter {name!r} must be a non-negative integer")
    for name, summary in payload["histograms"].items():
        if not isinstance(summary, dict):
            raise ValueError(f"histogram {name!r} must be an object")
        missing = _HIST_KEYS - set(summary)
        if missing:
            raise ValueError(
                f"histogram {name!r} missing keys {sorted(missing)}")
        for key in _HIST_KEYS:
            if not isinstance(summary[key], (int, float)):
                raise ValueError(
                    f"histogram {name!r}.{key} must be a number")
    if "gauges" in payload and not isinstance(payload["gauges"], dict):
        raise ValueError("snapshot 'gauges' must be an object")
    return payload


def validate_trace_file(path: str) -> Dict:
    """Load and validate a trace JSON file (CI smoke entry point)."""
    with open(path) as handle:
        return validate_trace(json.load(handle))


def validate_metrics_file(path: str) -> Dict:
    """Load and validate a metrics snapshot JSON file."""
    with open(path) as handle:
        return validate_metrics_snapshot(json.load(handle))
