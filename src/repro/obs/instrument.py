"""Profiling hooks: the ``Instrumented`` mixin and ``traced`` decorator.

The hot paths (trainer, serving service, dataset build, embedding
stages) should not each invent a tracer-plumbing convention.
``Instrumented`` gives a class a ``tracer`` attribute defaulting to
the shared :data:`~repro.obs.tracing.NULL_TRACER` (so uninstrumented
use pays one attribute read), and ``traced`` wraps a method in a span
named after it.  Both are deliberately tiny: tracing must never change
behaviour, only observe it.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from .tracing import NULL_TRACER, Tracer


class Instrumented:
    """Mixin: a settable ``tracer`` defaulting to the shared null tracer.

    Cooperative with any ``__init__`` signature — the attribute is
    created lazily on first read, so subclasses need no super() call.
    """

    @property
    def tracer(self) -> Tracer:
        return getattr(self, "_obs_tracer", NULL_TRACER)

    @tracer.setter
    def tracer(self, tracer: Optional[Tracer]) -> None:
        self._obs_tracer = tracer if tracer is not None else NULL_TRACER

    def set_tracer(self, tracer: Optional[Tracer]) -> "Instrumented":
        """Fluent form of the setter: ``obj.set_tracer(t)`` returns obj."""
        self.tracer = tracer
        return self


def traced(name: Optional[str] = None, **span_attrs) -> Callable:
    """Decorate a method of an :class:`Instrumented` object with a span.

    ``@traced("serve.query_batch")`` opens that span around every call
    (attributes passed to ``traced`` are attached to it); with the
    default name the span is ``<ClassName>.<method>``.  With the null
    tracer the wrapper adds one attribute read and a no-op context.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            tracer = getattr(self, "tracer", NULL_TRACER)
            if not tracer.enabled:
                return fn(self, *args, **kwargs)
            with tracer.span(span_name, **span_attrs):
                return fn(self, *args, **kwargs)

        return wrapper

    return decorate
