"""Tracing: nestable, thread-safe wall-time spans with a JSON export.

The paper's efficiency story (Section 6.5, Table 5) is stage-level:
per-query estimation cost online, per-epoch training cost offline.  A
:class:`Tracer` makes those stages first-class — every instrumented
layer opens a ``span("name", **attrs)`` around its phase, spans nest
into a tree per thread, and the finished tree exports as structured
JSON (``to_dict`` / ``export``) or as a flame-style indented text
summary (``flame``) for reading at the terminal.

Design constraints, in order:

* **Near-zero cost when off.**  The default tracer everywhere is
  :data:`NULL_TRACER`; its ``span()`` returns one cached no-op context
  manager, so the hot paths pay a single attribute check.  The
  instrumentation-overhead benchmark holds the *enabled* tracer under
  5% on a training run; disabled it is unmeasurable.
* **Thread safety by construction.**  The active span stack is
  thread-local; a span's parent is always on the same thread, so no
  lock is held while a span is open.  Spans started on a thread with
  no local parent become roots (appended under the tracer lock) —
  the threaded HTTP front-end produces one root per request worker.
* **Bounded trees.**  Hot loops do not open a span per step; they
  accumulate phase durations into the enclosing span's counters
  (:meth:`Tracer.add`) and materialise one aggregate child span per
  phase at epoch end (:meth:`Tracer.record`).

Stdlib only.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

TRACE_SCHEMA = "repro.obs.trace/v1"


class Span:
    """One timed stage: name, attributes, counters, children.

    ``duration_s`` is perf_counter-based; ``start_unix`` is wall-clock
    (for correlating traces across processes).  ``counters`` holds
    float accumulators (e.g. per-phase seconds summed over a hot loop);
    ``attrs`` holds JSON-able identity (epoch number, batch size, ...).
    """

    __slots__ = ("name", "attrs", "counters", "children", "thread",
                 "start_unix", "duration_s", "_t0")

    def __init__(self, name: str, attrs: Optional[Dict] = None):
        self.name = str(name)
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.thread = threading.current_thread().name
        self.start_unix = time.time()
        self.duration_s = 0.0
        self._t0 = time.perf_counter()

    def add(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def finish(self) -> "Span":
        self.duration_s = time.perf_counter() - self._t0
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_unix": round(self.start_unix, 6),
            "duration_s": round(self.duration_s, 9),
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "counters": {k: round(v, 9)
                         for k, v in self.counters.items()},
            "children": [c.to_dict() for c in self.children],
        }


class _NullSpanContext:
    """The no-op context manager handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager for one live span of an enabled tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict):
        self._tracer = tracer
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error",
                                        f"{exc_type.__name__}: {exc}")
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects a forest of spans; one instance per traced activity.

    Use :meth:`span` as a context manager around each stage; nesting
    follows the call stack per thread.  :meth:`add` accumulates a
    counter on the innermost open span of the calling thread (no-op
    with no open span), and :meth:`record` attaches an already-timed
    aggregate child — the bounded-tree alternative to a span per loop
    iteration.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self.roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._created_unix = time.time()

    # -- span lifecycle --------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a span; ``with tracer.span("stage", k=v) as s:``."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return _SpanContext(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        span.finish()
        # Tolerate out-of-order exits rather than corrupting the tree.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            while stack and stack[-1] is not span:
                stack.pop().finish()
            if stack:
                stack.pop()

    # -- in-span helpers -------------------------------------------------
    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Accumulate a counter on the current span (no-op without one)."""
        if not self.enabled:
            return
        span = self.current()
        if span is not None:
            span.add(counter, amount)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the current span (no-op without one)."""
        if not self.enabled:
            return
        span = self.current()
        if span is not None:
            span.attrs.update(attrs)

    def record(self, name: str, duration_s: float, **attrs) -> None:
        """Attach a completed child span with an externally measured
        duration — used to materialise per-phase aggregates (e.g. the
        summed forward/backward/optimizer time of one epoch) without a
        span per hot-loop iteration."""
        if not self.enabled:
            return
        span = Span(name, attrs)
        span.duration_s = float(duration_s)
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- export ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            roots = list(self.roots)
        return {
            "schema": TRACE_SCHEMA,
            "created_unix": round(self._created_unix, 6),
            "spans": [s.to_dict() for s in roots],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def export(self, path: str) -> str:
        """Write the trace JSON to ``path``; returns the path."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def reset(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()

    # -- human-readable summary ------------------------------------------
    def flame(self, min_fraction: float = 0.0) -> str:
        """Flame-style indented text summary of the span forest.

        Each line shows the span's duration, its share of the parent,
        and its counters; children below ``min_fraction`` of their
        parent are elided into a ``...`` line.
        """
        lines: List[str] = []
        with self._lock:
            roots = list(self.roots)

        def walk(span: Span, depth: int, parent_s: Optional[float]):
            share = ""
            if parent_s and parent_s > 0:
                share = f" ({100.0 * span.duration_s / parent_s:5.1f}%)"
            counters = ""
            if span.counters:
                counters = "  [" + ", ".join(
                    f"{k}={v:.4g}" for k, v in
                    sorted(span.counters.items())) + "]"
            lines.append(f"{'  ' * depth}{span.duration_s:9.4f}s{share}  "
                         f"{span.name}{counters}")
            elided = 0
            for child in span.children:
                if (span.duration_s > 0 and min_fraction > 0 and
                        child.duration_s / span.duration_s < min_fraction):
                    elided += 1
                    continue
                walk(child, depth + 1, span.duration_s)
            if elided:
                lines.append(f"{'  ' * (depth + 1)}... "
                             f"({elided} spans elided)")

        for root in roots:
            walk(root, 0, None)
        return "\n".join(lines)


NULL_TRACER = Tracer(enabled=False)
"""Shared disabled tracer: the default for every instrumented layer."""
