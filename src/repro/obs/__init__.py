"""Unified observability layer: tracing spans, shared metrics, hooks.

The measurement substrate behind the paper's efficiency claims
(Section 6.5, Table 5: per-query estimation time, per-epoch training
time) and behind every later perf PR.  Three pieces:

``tracing``
    :class:`Tracer` — nestable, thread-safe ``span(name, **attrs)``
    context managers producing a structured span tree, exportable as
    JSON and as a flame-style text summary.  The shared
    :data:`NULL_TRACER` keeps uninstrumented runs at zero cost.
``metrics``
    :class:`Counter` / :class:`Histogram` / :class:`MetricsRegistry`,
    promoted from ``repro.serving.metrics`` (now a deprecated
    re-export) so serving, the trainer and the sweep executor feed one
    registry; ``global_registry()`` is the process-wide default.
``instrument``
    The :class:`Instrumented` mixin and :func:`traced` decorator that
    wire spans into hot paths without per-class plumbing.

``schema`` validates both export formats fail-closed (the CI obs-smoke
job and the golden tests call it).  Everything is stdlib + numpy.
"""

from .instrument import Instrumented, traced
from .metrics import (
    Counter, Histogram, MetricsRegistry, global_registry,
    reset_global_registry,
)
from .schema import (
    validate_metrics_file, validate_metrics_snapshot, validate_trace,
    validate_trace_file,
)
from .tracing import NULL_TRACER, TRACE_SCHEMA, Span, Tracer

__all__ = [
    "Instrumented", "traced",
    "Counter", "Histogram", "MetricsRegistry",
    "global_registry", "reset_global_registry",
    "validate_metrics_file", "validate_metrics_snapshot",
    "validate_trace", "validate_trace_file",
    "NULL_TRACER", "TRACE_SCHEMA", "Span", "Tracer",
]
