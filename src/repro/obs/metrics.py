"""Shared metrics: counters, latency histograms, one JSON snapshot.

Promoted out of ``repro.serving.metrics`` (which remains as a
deprecated re-export) so that every layer — the serving stack, the
trainer, the sweep executor — feeds one metrics vocabulary.  The
paper's Table 5 measures exactly what these types record: per-query
estimation cost online (latency histograms) and per-epoch training
cost offline (step/epoch histograms).

``global_registry()`` returns the process-wide default registry that
the trainer and the sweep executor write into; the serving service
keeps a private registry per instance (its snapshot is a public,
scrapeable schema) unless handed a shared one.

Stdlib + numpy only; all types are thread-safe (the HTTP front-end is
a threading server).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Sliding-window histogram with exact percentiles.

    Keeps the most recent ``window`` observations (default 16384) — enough
    for stable p99 estimates while bounding memory for long-lived servers.
    """

    def __init__(self, name: str, window: int = 16384):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._total += float(value)

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]) of the current window."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.fromiter(self._samples, float),
                                       q))

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self._samples:
                return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                        "p99": 0.0, "max": 0.0}
            arr = np.fromiter(self._samples, float)
            p50, p95, p99 = np.percentile(arr, [50, 95, 99])
            return {
                "count": self._count,
                "mean": float(self._total / max(self._count, 1)),
                "p50": float(p50), "p95": float(p95), "p99": float(p99),
                "max": float(arr.max()),
            }


class MetricsRegistry:
    """Named counters + histograms with a JSON snapshot.

    ``snapshot()`` also merges in any gauge callbacks registered with
    :meth:`register_gauge` (the service uses these to surface live cache
    hit rates without the registry knowing about caches).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, "object"] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(self, name: str, window: int = 16384) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, window=window)
            return self._histograms[name]

    def register_gauge(self, name: str, fn) -> None:
        """``fn`` is a zero-arg callable returning a JSON-able value."""
        with self._lock:
            self._gauges[name] = fn

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            "counters": {n: c.value for n, c in self._counters.items()},
            "histograms": {n: h.summary()
                           for n, h in self._histograms.items()},
        }
        gauges = {}
        for name, fn in self._gauges.items():
            try:
                gauges[name] = fn()
            except Exception as exc:   # a broken gauge must not kill /metrics
                gauges[name] = f"error: {exc}"
        if gauges:
            snap["gauges"] = gauges
        return snap

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
_GLOBAL_REGISTRY = MetricsRegistry()
# Created at import, before any thread or fork exists, and only ever
# held for the microseconds of a registry swap — never across a fork.
# repro: allow[F001] import-time lock, never held across a fork point
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (trainer, sweep executor, CLI)."""
    return _GLOBAL_REGISTRY


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (test isolation); returns it."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        _GLOBAL_REGISTRY = MetricsRegistry()
        return _GLOBAL_REGISTRY
