"""Adapter presenting DeepOD (and its variants) through the shared
:class:`TravelTimeEstimator` interface so the comparison harness treats all
methods uniformly."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config import DeepODConfig
from ..core.trainer import DeepODTrainer, TrainingHistory, build_deepod
from ..datagen.dataset import TaxiDataset
from ..trajectory.model import TripRecord
from .base import TravelTimeEstimator


class DeepODEstimator(TravelTimeEstimator):
    """DeepOD wrapped as a TravelTimeEstimator."""

    name = "DeepOD"

    def __init__(self, config: Optional[DeepODConfig] = None,
                 name: Optional[str] = None,
                 eval_every: int = 50):
        self.config = config or DeepODConfig()
        if name is not None:
            self.name = name
        self.eval_every = eval_every
        self.trainer: Optional[DeepODTrainer] = None
        self.history: Optional[TrainingHistory] = None

    def fit(self, dataset: TaxiDataset) -> "DeepODEstimator":
        model = build_deepod(dataset, self.config)
        self.trainer = DeepODTrainer(model, dataset,
                                     eval_every=self.eval_every)
        self.history = self.trainer.fit(
            track_validation=self.eval_every > 0)
        return self

    def predict(self, trips: Sequence[TripRecord]) -> np.ndarray:
        if self.trainer is None:
            raise RuntimeError("fit() must be called before predict()")
        return self.trainer.predict(list(trips))

    def model_size_bytes(self) -> int:
        if self.trainer is None:
            return 0
        return self.trainer.model.size_bytes()
