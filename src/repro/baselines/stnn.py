"""STNN: Spatial Temporal deep Neural Network [Jindal et al. 2017].

The paper describes STNN as a multi-layer neural network that first
predicts the travel *distance* from the raw OD coordinates, then combines
the predicted distance with the departure-time information to predict the
travel time.  Crucially it ignores the road network, which the paper
identifies as the reason it trails MURAT and DeepOD.

Implemented here with ``repro.nn``: a distance MLP over (origin, dest)
coordinates and a time MLP over (predicted distance, temporal features),
trained jointly with a combined MAE objective.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datagen.dataset import TaxiDataset
from ..nn import Adam, StepDecay, Tensor, TwoLayerMLP, concat, mae_loss
from ..trajectory.model import TripRecord
from .base import TravelTimeEstimator


class STNNEstimator(TravelTimeEstimator):
    """Distance-then-time neural network over raw coordinates."""

    name = "STNN"

    def __init__(self, hidden: int = 32, epochs: int = 8,
                 batch_size: int = 64, learning_rate: float = 0.01,
                 distance_loss_weight: float = 0.3, seed: int = 0):
        if hidden < 1 or epochs < 1 or batch_size < 1:
            raise ValueError("invalid STNN hyper-parameters")
        if not 0 <= distance_loss_weight < 1:
            raise ValueError("distance_loss_weight must be in [0, 1)")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.distance_loss_weight = distance_loss_weight
        self.seed = seed
        self._dist_net: Optional[TwoLayerMLP] = None
        self._time_net: Optional[TwoLayerMLP] = None
        self._dataset: Optional[TaxiDataset] = None
        self._norm: dict = {}

    # ------------------------------------------------------------------
    def _spatial_features(self, trips: Sequence[TripRecord]) -> np.ndarray:
        rows = [[*t.od.origin_xy, *t.od.destination_xy] for t in trips]
        return np.asarray(rows, dtype=float)

    def _temporal_features(self, trips: Sequence[TripRecord]) -> np.ndarray:
        slot_cfg = self._dataset.slot_config
        rows = []
        for t in trips:
            hour = slot_cfg.hour_of_day(t.od.depart_time)
            dow = slot_cfg.day_of_week(t.od.depart_time)
            rows.append([np.sin(2 * np.pi * hour / 24),
                         np.cos(2 * np.pi * hour / 24),
                         dow / 6.0, float(dow >= 5)])
        return np.asarray(rows, dtype=float)

    def _distances(self, trips: Sequence[TripRecord]) -> np.ndarray:
        """Ground-truth route distances (training targets for the distance
        head); falls back to the Euclidean distance when no trajectory."""
        net = self._dataset.net
        out = []
        for t in trips:
            if t.trajectory is not None:
                out.append(sum(net.edge(e).length
                               for e in t.trajectory.edge_ids))
            else:
                ox, oy = t.od.origin_xy
                dx, dy = t.od.destination_xy
                out.append(float(np.hypot(ox - dx, oy - dy)))
        return np.asarray(out, dtype=float)

    # ------------------------------------------------------------------
    def fit(self, dataset: TaxiDataset) -> "STNNEstimator":
        self._dataset = dataset
        rng = np.random.default_rng(self.seed)
        trips = dataset.split.train
        xs = self._spatial_features(trips)
        xt = self._temporal_features(trips)
        dist = self._distances(trips)
        y = np.array([t.travel_time for t in trips])

        self._norm = {
            "xs_mean": xs.mean(axis=0), "xs_std": np.maximum(xs.std(axis=0),
                                                             1e-9),
            "d_mean": dist.mean(), "d_std": max(dist.std(), 1e-9),
            "y_mean": y.mean(), "y_std": max(y.std(), 1e-9),
        }
        xs_n = (xs - self._norm["xs_mean"]) / self._norm["xs_std"]
        d_n = (dist - self._norm["d_mean"]) / self._norm["d_std"]
        y_n = (y - self._norm["y_mean"]) / self._norm["y_std"]

        self._dist_net = TwoLayerMLP(4, self.hidden, 1, rng=rng)
        self._time_net = TwoLayerMLP(1 + xt.shape[1], self.hidden, 1,
                                     rng=rng)
        params = (list(self._dist_net.parameters())
                  + list(self._time_net.parameters()))
        opt = Adam(params, lr=self.learning_rate)
        sched = StepDecay(opt, step_epochs=2, factor=5.0)
        n = len(trips)
        w = self.distance_loss_weight
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self.batch_size):
                idx = order[lo:lo + self.batch_size]
                opt.zero_grad()
                d_pred = self._dist_net(Tensor(xs_n[idx]))
                t_in = concat([d_pred, Tensor(xt[idx])], axis=1)
                t_pred = self._time_net(t_in)
                loss = (mae_loss(d_pred, Tensor(d_n[idx][:, None])) * w
                        + mae_loss(t_pred, Tensor(y_n[idx][:, None]))
                        * (1 - w))
                loss.backward()
                opt.step()
            sched.epoch_end()
        return self

    def predict(self, trips: Sequence[TripRecord]) -> np.ndarray:
        if self._dist_net is None:
            raise RuntimeError("fit() must be called before predict()")
        xs = self._spatial_features(trips)
        xt = self._temporal_features(trips)
        xs_n = (xs - self._norm["xs_mean"]) / self._norm["xs_std"]
        d_pred = self._dist_net(Tensor(xs_n))
        t_pred = self._time_net(concat([d_pred, Tensor(xt)], axis=1))
        preds = t_pred.data[:, 0] * self._norm["y_std"] + self._norm["y_mean"]
        return np.maximum(preds, 1.0)

    def model_size_bytes(self) -> int:
        if self._dist_net is None:
            return 0
        return (self._dist_net.size_bytes() + self._time_net.size_bytes())
