"""The five comparison methods of Section 6.1 plus the DeepOD adapter:
TEMP [39], LR, GBM [10], STNN [23] and MURAT [27]."""

from .base import TravelTimeEstimator, od_feature_matrix, target_vector
from .temp import TEMPEstimator
from .linreg import LinearRegressionEstimator
from .gbm import GBMEstimator
from .stnn import STNNEstimator
from .murat import MURATEstimator
from .deepod_adapter import DeepODEstimator

__all__ = [
    "TravelTimeEstimator", "od_feature_matrix", "target_vector",
    "TEMPEstimator", "LinearRegressionEstimator", "GBMEstimator",
    "STNNEstimator", "MURATEstimator", "DeepODEstimator",
]
