"""MURAT: multi-task representation learning [Li et al., KDD 2018].

The strongest published baseline.  Per the paper's description (Sections 1
and 7): MURAT learns representations of road segments (via an *undirected*
graph embedding of the road network) and of origin-destination information
(embedding the raw longitude/latitude of the endpoints into spatial-grid
cells), plus time-slot representations from an undirected one-day temporal
graph, and jointly predicts travel distance and travel time (multi-task).
Its two documented weaknesses relative to DeepOD — no use of the affiliated
historical trajectory, and coordinate-grid rather than road-matched spatial
features — are preserved faithfully.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..datagen.dataset import TaxiDataset
from ..embedding import EmbeddingConfig, embed_graph
from ..nn import (
    Adam, Embedding, StepDecay, Tensor, TwoLayerMLP, concat, mae_loss,
)
from ..roadnet.linegraph import WeightedDigraph
from ..trajectory.model import TripRecord
from .base import TravelTimeEstimator


class MURATEstimator(TravelTimeEstimator):
    """Multi-task (distance + time) representation-learning estimator."""

    name = "MURAT"

    def __init__(self, grid_cells: int = 12, embed_dim: int = 16,
                 slot_minutes: int = 30, hidden: int = 64,
                 epochs: int = 8, batch_size: int = 64,
                 learning_rate: float = 0.01,
                 distance_loss_weight: float = 0.3, seed: int = 0):
        if grid_cells < 2 or embed_dim < 1:
            raise ValueError("invalid MURAT hyper-parameters")
        self.grid_cells = grid_cells
        self.embed_dim = embed_dim
        self.slot_minutes = slot_minutes
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.distance_loss_weight = distance_loss_weight
        self.seed = seed
        self._dataset: Optional[TaxiDataset] = None
        self._cell_emb: Optional[Embedding] = None
        self._slot_emb: Optional[Embedding] = None
        self._trunk: Optional[TwoLayerMLP] = None
        self._time_head: Optional[TwoLayerMLP] = None
        self._dist_head: Optional[TwoLayerMLP] = None
        self._norm: dict = {}

    # ------------------------------------------------------------------
    # Feature mapping
    # ------------------------------------------------------------------
    def _cell_of(self, x: float, y: float) -> int:
        min_x, min_y, max_x, max_y = self._bbox
        gx = int(np.clip((x - min_x) / max(max_x - min_x, 1e-9)
                         * self.grid_cells, 0, self.grid_cells - 1))
        gy = int(np.clip((y - min_y) / max(max_y - min_y, 1e-9)
                         * self.grid_cells, 0, self.grid_cells - 1))
        return gy * self.grid_cells + gx

    def _slot_of(self, t: float) -> int:
        minutes = (t / 60.0) % (24 * 60)
        return int(minutes // self.slot_minutes)

    def _index_features(self, trips: Sequence[TripRecord]
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        o_cells = np.array([self._cell_of(*t.od.origin_xy) for t in trips])
        d_cells = np.array([self._cell_of(*t.od.destination_xy)
                            for t in trips])
        slots = np.array([self._slot_of(t.od.depart_time) for t in trips])
        return o_cells, d_cells, slots

    def _float_features(self, trips: Sequence[TripRecord]) -> np.ndarray:
        """Coordinate features plus trip metadata (day-of-week one-hot),
        as in Li et al.'s feature set."""
        rows = []
        for t in trips:
            ox, oy = t.od.origin_xy
            dx, dy = t.od.destination_xy
            dow = int((t.od.depart_time // 86400.0) % 7)
            dow_onehot = [0.0] * 7
            dow_onehot[dow] = 1.0
            rows.append([ox, oy, dx, dy,
                         float(np.hypot(ox - dx, oy - dy))] + dow_onehot)
        return np.asarray(rows)

    def _distances(self, trips: Sequence[TripRecord]) -> np.ndarray:
        net = self._dataset.net
        out = []
        for t in trips:
            if t.trajectory is not None:
                out.append(sum(net.edge(e).length
                               for e in t.trajectory.edge_ids))
            else:
                ox, oy = t.od.origin_xy
                dx, dy = t.od.destination_xy
                out.append(float(np.hypot(ox - dx, oy - dy)))
        return np.asarray(out)

    # ------------------------------------------------------------------
    def _pretrain_embeddings(self, rng: np.random.Generator) -> None:
        """MURAT's unsupervised initialisations.

        Spatial: an undirected grid-adjacency graph over the coordinate
        cells (4-neighbourhood).  Temporal: an undirected one-day slot
        cycle — the paper criticises both as missing directionality and
        the neighbouring-day links.
        """
        g = self.grid_cells
        spatial = WeightedDigraph(g * g)
        for gy in range(g):
            for gx in range(g):
                node = gy * g + gx
                for dx, dy in ((1, 0), (0, 1)):
                    nx_, ny_ = gx + dx, gy + dy
                    if nx_ < g and ny_ < g:
                        other = ny_ * g + nx_
                        spatial.add_edge(node, other, 1.0)
                        spatial.add_edge(other, node, 1.0)
        from ..core.embeddings import rescale_pretrained
        cell_matrix = embed_graph(spatial, EmbeddingConfig(
            method="node2vec", dim=self.embed_dim, seed=self.seed,
            num_walks=2, walk_length=10))
        self._cell_emb.load_pretrained(rescale_pretrained(cell_matrix))

        slots = int(24 * 60 // self.slot_minutes)
        temporal = WeightedDigraph(slots)
        for s in range(slots):
            temporal.add_edge(s, (s + 1) % slots, 1.0)
            temporal.add_edge((s + 1) % slots, s, 1.0)
        slot_matrix = embed_graph(temporal, EmbeddingConfig(
            method="node2vec", dim=self.embed_dim, seed=self.seed + 1,
            num_walks=2, walk_length=10))
        self._slot_emb.load_pretrained(rescale_pretrained(slot_matrix))

    # ------------------------------------------------------------------
    def fit(self, dataset: TaxiDataset) -> "MURATEstimator":
        self._dataset = dataset
        self._bbox = dataset.net.bounding_box()
        rng = np.random.default_rng(self.seed)
        trips = dataset.split.train

        slots = int(24 * 60 // self.slot_minutes)
        self._cell_emb = Embedding(self.grid_cells ** 2, self.embed_dim,
                                   rng=rng)
        self._slot_emb = Embedding(slots, self.embed_dim, rng=rng)
        self._pretrain_embeddings(rng)

        o_cells, d_cells, slot_ids = self._index_features(trips)
        floats = self._float_features(trips)
        dist = self._distances(trips)
        y = np.array([t.travel_time for t in trips])
        self._norm = {
            "f_mean": floats.mean(axis=0),
            "f_std": np.maximum(floats.std(axis=0), 1e-9),
            "d_mean": dist.mean(), "d_std": max(dist.std(), 1e-9),
            "y_mean": y.mean(), "y_std": max(y.std(), 1e-9),
        }
        floats_n = (floats - self._norm["f_mean"]) / self._norm["f_std"]
        d_n = (dist - self._norm["d_mean"]) / self._norm["d_std"]
        y_n = (y - self._norm["y_mean"]) / self._norm["y_std"]

        in_width = 3 * self.embed_dim + floats.shape[1]
        self._trunk = TwoLayerMLP(in_width, self.hidden, self.hidden,
                                  rng=rng)
        self._time_head = TwoLayerMLP(self.hidden, self.hidden // 2, 1,
                                      rng=rng)
        self._dist_head = TwoLayerMLP(self.hidden, self.hidden // 2, 1,
                                      rng=rng)
        params = (list(self._cell_emb.parameters())
                  + list(self._slot_emb.parameters())
                  + list(self._trunk.parameters())
                  + list(self._time_head.parameters())
                  + list(self._dist_head.parameters()))
        opt = Adam(params, lr=self.learning_rate)
        sched = StepDecay(opt, step_epochs=2, factor=5.0)
        n = len(trips)
        w = self.distance_loss_weight
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self.batch_size):
                idx = order[lo:lo + self.batch_size]
                opt.zero_grad()
                shared = self._shared_representation(
                    o_cells[idx], d_cells[idx], slot_ids[idx],
                    floats_n[idx])
                t_pred = self._time_head(shared)
                d_pred = self._dist_head(shared)
                loss = (mae_loss(t_pred, Tensor(y_n[idx][:, None]))
                        * (1 - w)
                        + mae_loss(d_pred, Tensor(d_n[idx][:, None])) * w)
                loss.backward()
                opt.step()
            sched.epoch_end()
        return self

    def _shared_representation(self, o_cells, d_cells, slot_ids,
                               floats_n) -> Tensor:
        o_vec = self._cell_emb(o_cells)
        d_vec = self._cell_emb(d_cells)
        s_vec = self._slot_emb(slot_ids)
        x = concat([o_vec, d_vec, s_vec, Tensor(floats_n)], axis=1)
        return self._trunk(x).relu()

    def predict(self, trips: Sequence[TripRecord]) -> np.ndarray:
        if self._trunk is None:
            raise RuntimeError("fit() must be called before predict()")
        o_cells, d_cells, slot_ids = self._index_features(trips)
        floats = self._float_features(trips)
        floats_n = (floats - self._norm["f_mean"]) / self._norm["f_std"]
        shared = self._shared_representation(o_cells, d_cells, slot_ids,
                                             floats_n)
        preds = self._time_head(shared).data[:, 0]
        preds = preds * self._norm["y_std"] + self._norm["y_mean"]
        return np.maximum(preds, 1.0)

    def model_size_bytes(self) -> int:
        if self._trunk is None:
            return 0
        return sum(m.size_bytes() for m in (
            self._cell_emb, self._slot_emb, self._trunk,
            self._time_head, self._dist_head))
