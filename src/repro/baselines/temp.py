"""TEMP: temporally weighted neighbours [Wang et al., SIGSPATIAL 2016].

A non-learning baseline: the travel time of an OD query is the average
travel time of historical trips whose origin and destination both fall
within a spatial neighbourhood of the query's endpoints and whose departure
falls in the same time-of-week slot (with progressive relaxation when too
few neighbours exist).  Its "model" is the historical trip table itself, so
its memory footprint scales with the data (Table 5's observation) and its
query latency is the highest of all methods.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datagen.dataset import TaxiDataset
from ..trajectory.model import TripRecord
from .base import TravelTimeEstimator


class TEMPEstimator(TravelTimeEstimator):
    """Neighbour-averaging travel-time estimation."""

    name = "TEMP"

    def __init__(self, neighbor_radius: float = 400.0,
                 slot_minutes: float = 30.0, min_neighbors: int = 3,
                 max_relaxations: int = 4):
        if neighbor_radius <= 0 or slot_minutes <= 0:
            raise ValueError("radius and slot size must be positive")
        self.neighbor_radius = neighbor_radius
        self.slot_minutes = slot_minutes
        self.min_neighbors = min_neighbors
        self.max_relaxations = max_relaxations
        self._records: Optional[np.ndarray] = None   # ox oy dx dy slot time
        self._slot_index: Dict[int, List[int]] = {}
        self._slots_per_week = int(7 * 24 * 60 // slot_minutes)
        self._fallback_time = 0.0

    # ------------------------------------------------------------------
    def fit(self, dataset: TaxiDataset) -> "TEMPEstimator":
        trips = dataset.split.train
        if not trips:
            raise ValueError("no training trips")
        rows = np.zeros((len(trips), 6))
        self._slot_index = defaultdict(list)
        for i, trip in enumerate(trips):
            od = trip.od
            slot = self._week_slot(od.depart_time)
            rows[i] = (*od.origin_xy, *od.destination_xy, slot,
                       trip.travel_time)
            self._slot_index[slot].append(i)
        self._records = rows
        self._fallback_time = float(rows[:, 5].mean())
        return self

    def _week_slot(self, t: float) -> int:
        minutes = (t / 60.0) % (7 * 24 * 60)
        return int(minutes // self.slot_minutes)

    # ------------------------------------------------------------------
    def predict(self, trips: Sequence[TripRecord]) -> np.ndarray:
        if self._records is None:
            raise RuntimeError("fit() must be called before predict()")
        return np.array([self._predict_one(t) for t in trips])

    def _predict_one(self, trip: TripRecord) -> float:
        od = trip.od
        slot = self._week_slot(od.depart_time)
        radius = self.neighbor_radius
        slot_window = 0
        for _ in range(self.max_relaxations + 1):
            times = self._neighbors(od, slot, radius, slot_window)
            if len(times) >= self.min_neighbors:
                return float(np.mean(times))
            # Relax: wider radius and wider temporal window.
            radius *= 1.6
            slot_window += 1
        return float(np.mean(times)) if len(times) else self._fallback_time

    def _neighbors(self, od, slot: int, radius: float,
                   slot_window: int) -> np.ndarray:
        rows = self._records
        slots = [(slot + d) % self._slots_per_week
                 for d in range(-slot_window, slot_window + 1)]
        idx: List[int] = []
        for s in slots:
            idx.extend(self._slot_index.get(s, ()))
        if not idx:
            return np.empty(0)
        cand = rows[idx]
        ox, oy = od.origin_xy
        dx, dy = od.destination_xy
        near = ((np.hypot(cand[:, 0] - ox, cand[:, 1] - oy) <= radius)
                & (np.hypot(cand[:, 2] - dx, cand[:, 3] - dy) <= radius))
        return cand[near, 5]

    # ------------------------------------------------------------------
    def model_size_bytes(self) -> int:
        """TEMP must keep the whole historical trip table in memory."""
        if self._records is None:
            return 0
        return int(self._records.size * 8)
