"""GBM: gradient-boosted regression trees (the XGBoost stand-in).

A from-scratch implementation of squared-loss gradient boosting with
depth-limited CART regression trees, histogram-quantile split candidates,
shrinkage and subsampling — the same algorithm family the paper's XGBoost
baseline uses.  Model size depends on tree count/depth (Table 5 notes GBM's
size varies per dataset because those hyper-parameters are tuned per
dataset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datagen.dataset import TaxiDataset
from ..trajectory.model import TripRecord
from .base import TravelTimeEstimator, od_feature_matrix, target_vector


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def predict(self, x: np.ndarray) -> float:
        node = self
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold \
                else node.right
        return node.value

    def count_nodes(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.count_nodes() + self.right.count_nodes()


class _RegressionTree:
    """Depth-limited CART on squared loss with quantile split candidates."""

    def __init__(self, max_depth: int, min_samples_leaf: int,
                 num_candidates: int = 16):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.num_candidates = num_candidates
        self.root: Optional[_TreeNode] = None

    def fit(self, x: np.ndarray, residuals: np.ndarray) -> "_RegressionTree":
        self.root = self._build(x, residuals, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(x, y)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray,
                    y: np.ndarray) -> Optional[Tuple[int, float]]:
        n, d = x.shape
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain, best = 1e-12, None
        for feature in range(d):
            col = x[:, feature]
            qs = np.quantile(col, np.linspace(0.05, 0.95,
                                              self.num_candidates))
            for threshold in np.unique(qs):
                mask = col <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or \
                        n - n_left < self.min_samples_leaf:
                    continue
                yl, yr = y[mask], y[~mask]
                sse = float(((yl - yl.mean()) ** 2).sum()
                            + ((yr - yr.mean()) ** 2).sum())
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain, best = gain, (feature, float(threshold))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.array([self.root.predict(row) for row in x])

    def count_nodes(self) -> int:
        return self.root.count_nodes() if self.root else 0


class GBMEstimator(TravelTimeEstimator):
    """Gradient boosting over regression trees (squared loss)."""

    name = "GBM"

    def __init__(self, num_trees: int = 40, max_depth: int = 4,
                 learning_rate: float = 0.1, subsample: float = 0.8,
                 min_samples_leaf: int = 5, seed: int = 0):
        if num_trees < 1 or max_depth < 1:
            raise ValueError("num_trees and max_depth must be >= 1")
        if not 0 < learning_rate <= 1 or not 0 < subsample <= 1:
            raise ValueError("learning_rate and subsample must be in (0, 1]")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._trees: List[_RegressionTree] = []
        self._base: float = 0.0
        self._dataset: Optional[TaxiDataset] = None

    def fit(self, dataset: TaxiDataset) -> "GBMEstimator":
        self._dataset = dataset
        rng = np.random.default_rng(self.seed)
        x = od_feature_matrix(dataset.split.train, dataset)
        y = target_vector(dataset.split.train)
        self._base = float(y.mean())
        pred = np.full(len(y), self._base)
        self._trees = []
        for _ in range(self.num_trees):
            residual = y - pred
            if self.subsample < 1.0:
                idx = rng.choice(len(y), size=max(
                    int(len(y) * self.subsample), 2), replace=False)
            else:
                idx = np.arange(len(y))
            tree = _RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(x[idx], residual[idx])
            update = tree.predict(x)
            pred = pred + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, trips: Sequence[TripRecord]) -> np.ndarray:
        if self._dataset is None:
            raise RuntimeError("fit() must be called before predict()")
        x = od_feature_matrix(trips, self._dataset)
        pred = np.full(len(x), self._base)
        for tree in self._trees:
            pred = pred + self.learning_rate * tree.predict(x)
        return np.maximum(pred, 1.0)

    def model_size_bytes(self) -> int:
        # Each node stores (feature id, threshold, value) ~ 12 bytes at
        # float32/int32 precision.
        nodes = sum(t.count_nodes() for t in self._trees)
        return 12 * nodes + 4
