"""LR: linear regression baseline.

Fits travel time as a linear function of the OD features with a
least-squares (Euclidean) loss, solved in closed form via the normal
equations with a small ridge term for conditioning.  The paper notes LR's
model size is constant across datasets and its accuracy poor because travel
time is not linear in the features.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datagen.dataset import TaxiDataset
from ..trajectory.model import TripRecord
from .base import TravelTimeEstimator, od_feature_matrix, target_vector


class LinearRegressionEstimator(TravelTimeEstimator):
    """Closed-form ridge-stabilised linear regression."""

    name = "LR"

    def __init__(self, ridge: float = 1e-6):
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.ridge = ridge
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._dataset: Optional[TaxiDataset] = None

    def fit(self, dataset: TaxiDataset) -> "LinearRegressionEstimator":
        self._dataset = dataset
        x = od_feature_matrix(dataset.split.train, dataset)
        y = target_vector(dataset.split.train)
        # Standardise features for numerical stability.
        self._mean = x.mean(axis=0)
        self._std = np.maximum(x.std(axis=0), 1e-9)
        xs = (x - self._mean) / self._std
        design = np.hstack([xs, np.ones((len(xs), 1))])
        gram = design.T @ design
        gram += self.ridge * np.eye(gram.shape[0])
        self._weights = np.linalg.solve(gram, design.T @ y)
        return self

    def predict(self, trips: Sequence[TripRecord]) -> np.ndarray:
        if self._weights is None or self._dataset is None:
            raise RuntimeError("fit() must be called before predict()")
        x = od_feature_matrix(trips, self._dataset)
        xs = (x - self._mean) / self._std
        design = np.hstack([xs, np.ones((len(xs), 1))])
        preds = design @ self._weights
        return np.maximum(preds, 1.0)

    def model_size_bytes(self) -> int:
        if self._weights is None:
            return 0
        # Weights + standardisation vectors, at float32 storage.
        return 4 * int(self._weights.size + self._mean.size + self._std.size)
