"""Common interface for all travel-time estimators.

Every method in the comparison (TEMP, LR, GBM, STNN, MURAT, DeepOD) fits on
training trip records and predicts from OD inputs alone, which keeps the
harness (Tables 3-6) uniform.  ``model_size_bytes`` supports Table 5's
memory-footprint column.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from ..datagen.dataset import TaxiDataset
from ..trajectory.model import TripRecord


class TravelTimeEstimator(ABC):
    """Abstract estimator: fit on trips, predict travel times in seconds."""

    name: str = "estimator"

    @abstractmethod
    def fit(self, dataset: TaxiDataset) -> "TravelTimeEstimator":
        """Train on ``dataset.split.train`` (may read validation data for
        early stopping, never test data)."""

    @abstractmethod
    def predict(self, trips: Sequence[TripRecord]) -> np.ndarray:
        """Estimate travel times from the trips' OD inputs only."""

    @abstractmethod
    def model_size_bytes(self) -> int:
        """Memory needed to apply the trained model (Table 5)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def od_feature_matrix(trips: Sequence[TripRecord],
                      dataset: TaxiDataset) -> np.ndarray:
    """Shared feature extraction for the classic baselines (LR / GBM).

    Features derivable from the OD input alone:
    origin x/y, destination x/y, Euclidean OD distance, hour-of-day
    (sin/cos), day-of-week, weekend flag, weather id, position ratios.
    """
    slot_cfg = dataset.slot_config
    rows = []
    for trip in trips:
        od = trip.od
        ox, oy = od.origin_xy
        dx, dy = od.destination_xy
        dist = float(np.hypot(ox - dx, oy - dy))
        hour = slot_cfg.hour_of_day(od.depart_time)
        dow = slot_cfg.day_of_week(od.depart_time)
        rows.append([
            ox, oy, dx, dy, dist,
            np.sin(2 * np.pi * hour / 24), np.cos(2 * np.pi * hour / 24),
            float(dow), float(dow >= 5), float(od.weather),
            od.ratio_start, od.ratio_end,
        ])
    return np.asarray(rows, dtype=float)


def target_vector(trips: Sequence[TripRecord]) -> np.ndarray:
    return np.array([t.travel_time for t in trips], dtype=float)
