"""Trajectory data model (paper Section 2, Definitions 1-2).

A raw trajectory is a sequence of timestamped GPS points.  After
map-matching, a trajectory on the road network consists of

* a **spatio-temporal path** SP — a sequence of (road segment, time
  interval) tuples <e_i, [t_i[1], t_i[-1]]>, and
* two **position ratios** PR = <r[1], r[-1]> locating the true origin and
  destination inside the first and last segments.

An OD input (Definition 2) is (origin point, destination point, departure
time) plus optional external features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class GPSPoint:
    """A timestamped planar position (metres in the local projection)."""

    x: float
    y: float
    timestamp: float

    @property
    def xy(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass
class RawTrajectory:
    """An ordered sequence of GPS points as emitted by a vehicle."""

    points: List[GPSPoint]

    def __post_init__(self):
        if len(self.points) < 2:
            raise ValueError("a trajectory needs at least two points")
        times = [p.timestamp for p in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("GPS timestamps must be non-decreasing")

    @property
    def origin(self) -> GPSPoint:
        return self.points[0]

    @property
    def destination(self) -> GPSPoint:
        return self.points[-1]

    @property
    def travel_time(self) -> float:
        return self.points[-1].timestamp - self.points[0].timestamp

    def __len__(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class PathElement:
    """One tuple of the spatio-temporal path: <e_i, [t_i[1], t_i[-1]]>."""

    edge_id: int
    enter_time: float
    exit_time: float

    def __post_init__(self):
        if self.exit_time < self.enter_time:
            raise ValueError(
                f"edge {self.edge_id}: exit before enter "
                f"({self.exit_time} < {self.enter_time})")

    @property
    def duration(self) -> float:
        return self.exit_time - self.enter_time

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.enter_time, self.exit_time)


@dataclass
class MatchedTrajectory:
    """A trajectory on the road network: ``<SP, PR>`` of Definition 1."""

    path: List[PathElement]
    ratio_start: float
    ratio_end: float

    def __post_init__(self):
        if not self.path:
            raise ValueError("spatio-temporal path is empty")
        if not (0.0 <= self.ratio_start <= 1.0):
            raise ValueError(f"r[1] must be in [0, 1], got {self.ratio_start}")
        if not (0.0 <= self.ratio_end <= 1.0):
            raise ValueError(f"r[-1] must be in [0, 1], got {self.ratio_end}")
        for prev, nxt in zip(self.path, self.path[1:]):
            if nxt.enter_time < prev.exit_time - 1e-9:
                raise ValueError("path time intervals must be ordered")

    @property
    def edge_ids(self) -> List[int]:
        return [el.edge_id for el in self.path]

    def encoder_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(edge_ids, intervals)`` arrays for the encoders.

        Returns an int64 ``(n,)`` array of edge ids and a float64
        ``(n, 2)`` array of (enter, exit) times.  Computed once and
        cached on the instance, so repeated epochs over the same batch
        skip the per-element Python loop.  The cache is invalidated
        when ``self.path`` is rebound or resized; :class:`PathElement`
        is frozen, so in-place element mutation cannot occur.
        """
        cached = self.__dict__.get("_encoder_arrays")
        if (cached is not None and cached[0] is self.path
                and cached[1] == len(self.path)):
            return cached[2], cached[3]
        n = len(self.path)
        edges = np.fromiter((el.edge_id for el in self.path),
                            dtype=np.int64, count=n)
        intervals = np.empty((n, 2), dtype=np.float64)
        for i, el in enumerate(self.path):
            intervals[i, 0] = el.enter_time
            intervals[i, 1] = el.exit_time
        self.__dict__["_encoder_arrays"] = (self.path, n, edges, intervals)
        return edges, intervals

    @property
    def depart_time(self) -> float:
        return self.path[0].enter_time

    @property
    def arrive_time(self) -> float:
        return self.path[-1].exit_time

    @property
    def travel_time(self) -> float:
        return self.arrive_time - self.depart_time

    def __len__(self) -> int:
        return len(self.path)


@dataclass(frozen=True)
class Query:
    """A raw travel-time query: origin, destination, departure time.

    The one query type shared by :class:`~repro.core.predictor.
    TravelTimePredictor`, the serving service and the CLI front-ends —
    previously each layer carried its own ad-hoc
    ``((ox, oy), (dx, dy), t)`` tuple shape.  Iterable (and therefore
    ``*``-unpackable) in exactly that legacy order, so tuple-shaped
    call sites keep working; :meth:`coerce` accepts either form.
    """

    origin_xy: Tuple[float, float]
    destination_xy: Tuple[float, float]
    depart_time: float

    def __post_init__(self):
        for name in ("origin_xy", "destination_xy"):
            point = getattr(self, name)
            if not (isinstance(point, (tuple, list)) and len(point) == 2):
                raise ValueError(f"{name} must be an (x, y) pair")
            object.__setattr__(self, name,
                               (float(point[0]), float(point[1])))
        object.__setattr__(self, "depart_time", float(self.depart_time))

    def __iter__(self):
        yield self.origin_xy
        yield self.destination_xy
        yield self.depart_time

    def as_tuple(self) -> Tuple[Tuple[float, float],
                                Tuple[float, float], float]:
        return (self.origin_xy, self.destination_xy, self.depart_time)

    @classmethod
    def coerce(cls, obj) -> "Query":
        """Accept a :class:`Query` or a legacy 3-tuple unchanged."""
        if isinstance(obj, cls):
            return obj
        try:
            origin, destination, depart = obj
        except (TypeError, ValueError):
            raise ValueError(
                "query must be a Query or an (origin_xy, destination_xy,"
                f" depart_time) triple, got {obj!r}")
        return cls(origin_xy=tuple(origin), destination_xy=tuple(destination),
                   depart_time=depart)


@dataclass
class ODInput:
    """Definition 2: origin, destination, departure time, external features.

    The origin/destination are stored both as raw coordinates and in their
    road-matched form (edge id + position ratio), since DeepOD consumes the
    matched representation (Section 3).
    """

    origin_xy: Tuple[float, float]
    destination_xy: Tuple[float, float]
    depart_time: float
    origin_edge: int = -1
    destination_edge: int = -1
    ratio_start: float = 0.0
    ratio_end: float = 1.0
    weather: int = 0
    external: Optional[dict] = None

    @property
    def is_matched(self) -> bool:
        return self.origin_edge >= 0 and self.destination_edge >= 0


@dataclass
class TripRecord:
    """One historical taxi order: an OD input plus its affiliated trajectory.

    The trajectory exists for training data; test-time OD inputs carry
    ``trajectory = None`` (the gap the paper's auxiliary loss bridges).
    """

    od: ODInput
    travel_time: float
    trajectory: Optional[MatchedTrajectory] = None
    raw: Optional[RawTrajectory] = None

    def __post_init__(self):
        if self.travel_time <= 0:
            raise ValueError("travel time must be positive")
