"""Per-edge time-interval interpolation (paper Section 2).

GPS points arrive every few seconds, while the spatio-temporal path needs an
entry/exit timestamp for every road segment.  The paper uses linear
interpolation to compute t_i[1] and t_i[-1]; we do the same: distribute time
along the route proportionally to distance between the surrounding GPS
fixes (or, when only endpoint timestamps are known, along the whole route).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..roadnet.graph import RoadNetwork
from .model import MatchedTrajectory, PathElement


def intervals_from_endpoint_times(
        net: RoadNetwork, edge_ids: Sequence[int],
        depart_time: float, arrive_time: float,
        ratio_start: float, ratio_end: float) -> List[PathElement]:
    """Linear interpolation of edge intervals from trip endpoints.

    The travelled distance on the first edge is ``(1 - r[1]) * len`` and on
    the last edge ``r[-1] * len`` (the trip enters the first segment at
    ratio r[1] and leaves the last at r[-1]); intermediate edges contribute
    their full length.  Time is spread proportionally to distance, matching
    the paper's linear-interpolation convention.
    """
    if arrive_time <= depart_time:
        raise ValueError("arrival must be after departure")
    if not edge_ids:
        raise ValueError("empty edge sequence")
    distances = _travelled_distances(net, edge_ids, ratio_start, ratio_end)
    total = float(sum(distances))
    if total <= 0:
        # Degenerate trip inside one point: spread time evenly.
        distances = [1.0] * len(edge_ids)
        total = float(len(edge_ids))
    duration = arrive_time - depart_time
    elements: List[PathElement] = []
    clock = depart_time
    for eid, dist in zip(edge_ids, distances):
        dt = duration * dist / total
        elements.append(PathElement(eid, clock, clock + dt))
        clock += dt
    # Snap the final exit to the exact arrival time (no float drift).
    last = elements[-1]
    elements[-1] = PathElement(last.edge_id, last.enter_time, arrive_time)
    return elements


def intervals_from_gps_times(
        net: RoadNetwork, edge_ids: Sequence[int],
        gps_times: Sequence[float], gps_route_positions: Sequence[float],
        ratio_start: float, ratio_end: float) -> List[PathElement]:
    """Interval interpolation anchored at every GPS fix.

    Parameters
    ----------
    gps_times:
        Timestamps of the GPS fixes along the trip.
    gps_route_positions:
        Cumulative route distance (metres from the trip origin) of each fix,
        monotone non-decreasing and aligned with ``gps_times``.

    Edge boundary crossings are converted to route positions, then their
    timestamps interpolated within the bracketing GPS fixes, which is how a
    matcher with dense fixes (3-second sampling in Chengdu/Xi'an) recovers
    fine-grained intervals.
    """
    if len(gps_times) != len(gps_route_positions):
        raise ValueError("times and positions must align")
    if len(gps_times) < 2:
        raise ValueError("need at least two GPS fixes")
    positions = np.asarray(gps_route_positions, dtype=float)
    times = np.asarray(gps_times, dtype=float)
    if np.any(np.diff(positions) < -1e-9):
        raise ValueError("route positions must be non-decreasing")
    if np.any(np.diff(times) < 0):
        raise ValueError("gps times must be non-decreasing")

    boundaries = _edge_boundaries(net, edge_ids, ratio_start, ratio_end)
    # The matcher's cumulative positions and the ratio-based boundary
    # model can drift by a few metres (projection vs path geometry);
    # rescale boundaries onto the observed position span so the first/last
    # timestamps pin exactly to the first/last GPS fixes.
    span = boundaries[-1] - boundaries[0]
    obs_span = positions[-1] - positions[0]
    if span > 0 and obs_span > 0:
        boundaries = (positions[0]
                      + (boundaries - boundaries[0]) * (obs_span / span))
    # Interpolate a timestamp for every boundary route-position.
    boundary_times = np.interp(boundaries, positions, times)
    elements = []
    for i, eid in enumerate(edge_ids):
        elements.append(PathElement(eid, float(boundary_times[i]),
                                    float(boundary_times[i + 1])))
    return elements


def _travelled_distances(net: RoadNetwork, edge_ids: Sequence[int],
                         ratio_start: float, ratio_end: float) -> List[float]:
    if len(edge_ids) == 1:
        span = max(ratio_end - ratio_start, 0.0)
        return [net.edge(edge_ids[0]).length * span]
    distances = [net.edge(eid).length for eid in edge_ids]
    distances[0] *= (1.0 - ratio_start)
    distances[-1] *= ratio_end
    return distances


def _edge_boundaries(net: RoadNetwork, edge_ids: Sequence[int],
                     ratio_start: float, ratio_end: float) -> np.ndarray:
    """Cumulative route positions of edge entry/exit points."""
    distances = _travelled_distances(net, edge_ids, ratio_start, ratio_end)
    return np.concatenate([[0.0], np.cumsum(distances)])


def build_matched_trajectory(
        net: RoadNetwork, edge_ids: Sequence[int], depart_time: float,
        arrive_time: float, ratio_start: float,
        ratio_end: float) -> MatchedTrajectory:
    """Convenience constructor used by the simulator and the matcher."""
    elements = intervals_from_endpoint_times(
        net, edge_ids, depart_time, arrive_time, ratio_start, ratio_end)
    return MatchedTrajectory(elements, ratio_start, ratio_end)
