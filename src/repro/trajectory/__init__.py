"""Trajectory substrate: the data model of Definitions 1-2 and the linear
interpolation of per-edge time intervals."""

from .model import (
    GPSPoint, MatchedTrajectory, ODInput, PathElement, Query,
    RawTrajectory, TripRecord,
)
from .interpolation import (
    build_matched_trajectory, intervals_from_endpoint_times,
    intervals_from_gps_times,
)

__all__ = [
    "GPSPoint", "MatchedTrajectory", "ODInput", "PathElement", "Query",
    "RawTrajectory", "TripRecord",
    "build_matched_trajectory", "intervals_from_endpoint_times",
    "intervals_from_gps_times",
]
