"""repro — a full reproduction of *Effective Travel Time Estimation: When
Historical Trajectories over Road Networks Matter* (DeepOD, SIGMOD 2020).

Subpackages
-----------
``repro.nn``
    From-scratch autograd/NN framework on numpy (PyTorch substitute).
``repro.roadnet``
    Road-network graphs, generators, shortest paths, spatial index,
    line-graph conversion.
``repro.temporal``
    Time slots (Eq. 2-3) and the weekly temporal graph (Fig. 5b).
``repro.trajectory``
    Trajectory data model (Definition 1) and interval interpolation.
``repro.mapmatching``
    HMM map matcher (Valhalla substitute).
``repro.embedding``
    DeepWalk / node2vec / LINE graph embeddings in numpy.
``repro.datagen``
    Synthetic taxi-city simulator producing Table 2-style datasets.
``repro.core``
    The DeepOD model, trainer (Algorithm 1) and ablation variants.
``repro.serving``
    Production-style serving: model artifacts, micro-batching, caching,
    fallback, metrics, HTTP/JSON-lines front-ends.
``repro.baselines``
    TEMP, LR, GBM, STNN and MURAT comparison methods.
``repro.eval``
    Metrics, the experiment harness, and analysis utilities.
"""

__version__ = "1.0.0"
