"""Temporal substrate: time slots (Eq. 2-3) and the temporal graph
(Figure 5b)."""

from .timeslot import SECONDS_PER_DAY, SECONDS_PER_WEEK, TimeSlotConfig
from .temporal_graph import (
    build_daily_graph, build_weekly_graph, embed_temporal_graph,
    weekly_edge_list,
)

__all__ = [
    "SECONDS_PER_DAY", "SECONDS_PER_WEEK", "TimeSlotConfig",
    "build_daily_graph", "build_weekly_graph", "embed_temporal_graph",
    "weekly_edge_list",
]
