"""Time slots and time remainders (paper Definition 4, Eq. 2-3).

A timestamp ``t`` is normalised relative to a base timestamp ``t0`` and a
slot size ``Δt``::

    t_p = floor((t - t0) / Δt)          (Eq. 2)
    t_r = t - t0 - t_p * Δt             (Eq. 3)

Because traffic conditions repeat weekly (Fig. 5a), only the slots of one
week are embedded: a slot maps to temporal-graph node ``t_p % slots_per_week``
(paper: ``t_p % 2016`` when Δt is 5 minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

SECONDS_PER_DAY = 24 * 3600
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


@dataclass(frozen=True)
class TimeSlotConfig:
    """Time-slot arithmetic parameterised by base timestamp and slot size.

    Parameters
    ----------
    base_timestamp:
        ``t0`` of Definition 4; must be no larger than any timestamp in the
        data.  For weekly periodicity to align with calendar weekdays, pick
        a ``t0`` that falls on a week boundary (e.g. a Monday midnight).
    slot_seconds:
        ``Δt``.  The paper's default is 5 minutes (300 s), giving 288 slots
        per day and 2016 per week.
    """

    base_timestamp: float = 0.0
    slot_seconds: float = 300.0

    def __post_init__(self):
        if self.slot_seconds <= 0:
            raise ValueError("slot size must be positive")
        if SECONDS_PER_DAY % self.slot_seconds != 0:
            raise ValueError(
                f"slot size {self.slot_seconds}s must divide one day evenly")

    # ------------------------------------------------------------------
    @property
    def slots_per_day(self) -> int:
        return int(SECONDS_PER_DAY // self.slot_seconds)

    @property
    def slots_per_week(self) -> int:
        return 7 * self.slots_per_day

    # ------------------------------------------------------------------
    def slot_of(self, timestamp: float) -> int:
        """Eq. 2: absolute slot index t_p (not yet wrapped to the week)."""
        if timestamp < self.base_timestamp:
            raise ValueError(
                f"timestamp {timestamp} precedes base {self.base_timestamp}")
        return int((timestamp - self.base_timestamp) // self.slot_seconds)

    def remainder_of(self, timestamp: float) -> float:
        """Eq. 3: remainder t_r in [0, Δt)."""
        t_p = self.slot_of(timestamp)
        return float(timestamp - self.base_timestamp
                     - t_p * self.slot_seconds)

    def normalize(self, timestamp: float) -> Tuple[int, float]:
        """Return (t_p, t_r); the <t_p, t_r> pair representing a timestamp."""
        t_p = self.slot_of(timestamp)
        t_r = float(timestamp - self.base_timestamp
                    - t_p * self.slot_seconds)
        return t_p, t_r

    def weekly_node(self, slot: int) -> int:
        """Temporal-graph node id: t_p % slots_per_week."""
        if slot < 0:
            raise ValueError("slot must be non-negative")
        return slot % self.slots_per_week

    def daily_node(self, slot: int) -> int:
        """Node id in a one-day temporal graph (for the T-day variant)."""
        if slot < 0:
            raise ValueError("slot must be non-negative")
        return slot % self.slots_per_day

    def slots_of(self, timestamps) -> np.ndarray:
        """Vectorised Eq. 2: absolute slot indices for an array of
        timestamps (same semantics as :meth:`slot_of` element-wise)."""
        ts = np.asarray(timestamps, dtype=np.float64)
        if ts.size and ts.min() < self.base_timestamp:
            raise ValueError(
                f"timestamp {ts.min()} precedes base {self.base_timestamp}")
        return np.floor_divide(ts - self.base_timestamp,
                               self.slot_seconds).astype(np.int64)

    def remainders_of(self, timestamps) -> np.ndarray:
        """Vectorised Eq. 3: remainders t_r in [0, Δt) for an array."""
        ts = np.asarray(timestamps, dtype=np.float64)
        return (ts - self.base_timestamp
                - self.slots_of(ts) * self.slot_seconds)

    def interval_slots(self, t_start: float, t_end: float) -> range:
        """All slot indices covered by a time interval (Eq. 4).

        ``Δd = t_p[-1] - t_p[1] + 1`` slots: t_p[1], t_p[1]+1, ..., t_p[-1].
        """
        if t_end < t_start:
            raise ValueError("interval end precedes start")
        first = self.slot_of(t_start)
        last = self.slot_of(t_end)
        return range(first, last + 1)

    def slot_start_time(self, slot: int) -> float:
        """Timestamp at which ``slot`` begins."""
        return self.base_timestamp + slot * self.slot_seconds

    def day_of_week(self, timestamp: float) -> int:
        """0 = first day of the base week (Monday by convention)."""
        seconds = (timestamp - self.base_timestamp) % SECONDS_PER_WEEK
        return int(seconds // SECONDS_PER_DAY)

    def hour_of_day(self, timestamp: float) -> float:
        seconds = (timestamp - self.base_timestamp) % SECONDS_PER_DAY
        return seconds / 3600.0
