"""The temporal graph of paper Figure 5(b).

One node per time slot of a week (2016 nodes at Δt = 5 min).  Two kinds of
directed edges:

* **neighbouring-slot edges** — slot s links to slot (s+1) mod N, expressing
  that adjacent time slots should have smooth embeddings;
* **neighbouring-day edges** — slot s links to the same slot one day later,
  (s + slots_per_day) mod N, expressing daily periodicity.

The paper's ablation T-day uses a one-day cycle instead, which cannot
distinguish weekdays; :func:`build_daily_graph` implements that variant for
Table 7.
"""

from __future__ import annotations

from typing import List, Tuple

from ..roadnet.linegraph import WeightedDigraph
from .timeslot import TimeSlotConfig


def build_weekly_graph(config: TimeSlotConfig) -> WeightedDigraph:
    """Directed weekly temporal graph (Figure 5b).

    Both edge families wrap modulo the week so the last Sunday slot connects
    forward to the first Monday slot, preserving weekly periodicity.
    """
    n = config.slots_per_week
    per_day = config.slots_per_day
    graph = WeightedDigraph(n)
    for s in range(n):
        graph.add_edge(s, (s + 1) % n, 1.0)          # neighbouring slots
        graph.add_edge(s, (s + per_day) % n, 1.0)    # neighbouring days
    return graph


def build_daily_graph(config: TimeSlotConfig) -> WeightedDigraph:
    """One-day temporal graph used by the T-day variant (Table 7)."""
    n = config.slots_per_day
    graph = WeightedDigraph(n)
    for s in range(n):
        graph.add_edge(s, (s + 1) % n, 1.0)
    return graph


def weekly_edge_list(config: TimeSlotConfig) -> List[Tuple[int, int]]:
    """Explicit edge list of the weekly graph (for tests/inspection)."""
    graph = build_weekly_graph(config)
    return [(u, v) for u, v, _ in graph.edges()]


def embed_temporal_graph(config: TimeSlotConfig, graph_kind: str = "weekly",
                         embedding=None, tracer=None):
    """Pre-train time-slot embeddings over the weekly/daily graph.

    Builds the temporal graph and routes it through the embedding engine
    (``repro.embedding.embed_graph``) — the alias-sampled lockstep walker
    by default.  ``embedding`` is an optional ``EmbeddingConfig``; the
    default uses short walks, matching how Wt is initialised downstream.
    ``tracer`` is forwarded to the embedding stages.  Returns a
    ``(num_slots, dim)`` matrix.
    """
    from ..embedding import EmbeddingConfig, embed_graph
    if graph_kind == "weekly":
        graph = build_weekly_graph(config)
    elif graph_kind == "daily":
        graph = build_daily_graph(config)
    else:
        raise ValueError("graph_kind must be weekly or daily")
    cfg = embedding or EmbeddingConfig(num_walks=2, walk_length=16)
    return embed_graph(graph, cfg, tracer=tracer)
