"""LINE: Large-scale Information Network Embedding [Tang et al. 2015].

Implements first-order proximity (directly connected nodes have similar
embeddings) and second-order proximity (nodes sharing neighbourhoods are
similar) with negative-sampling SGD over weighted edge samples.  One of the
three initialisation choices the paper evaluates (node2vec wins, Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..roadnet.linegraph import WeightedDigraph
from .walks import require_generator


@dataclass
class LineConfig:
    dim: int = 64
    order: int = 2           # 1 or 2
    samples: int = 100_000   # edge samples to draw
    negatives: int = 5
    lr: float = 0.025

    def __post_init__(self):
        if self.order not in (1, 2):
            raise ValueError("LINE order must be 1 or 2")
        if self.dim < 1 or self.samples < 1 or self.negatives < 0:
            raise ValueError("invalid LINE configuration")


def train_line(graph: WeightedDigraph, config: Optional[LineConfig] = None,
               rng: np.random.Generator = None) -> np.ndarray:
    """Train LINE embeddings; returns a (num_nodes, dim) matrix.

    ``rng`` is required: pretraining must be reproducible (D002).
    """
    config = config or LineConfig()
    rng = require_generator(rng, "train_line")
    edges = list(graph.edges())
    if not edges:
        raise ValueError("graph has no edges")
    sources = np.array([u for u, _, _ in edges])
    targets = np.array([v for _, v, _ in edges])
    weights = np.array([w for _, _, w in edges], dtype=float)
    weights = np.maximum(weights, 1e-9)
    edge_probs = weights / weights.sum()

    # Negative-sampling noise: out-degree^{3/4}.
    degree = np.zeros(graph.num_nodes)
    np.add.at(degree, sources, weights)
    noise = np.maximum(degree, 1e-3) ** 0.75
    noise /= noise.sum()

    dim = config.dim
    emb = (rng.random((graph.num_nodes, dim)) - 0.5) / dim
    # Second-order keeps a separate context table; first-order shares emb.
    context = np.zeros((graph.num_nodes, dim)) if config.order == 2 else emb

    batch = 256
    for lo in range(0, config.samples, batch):
        n = min(batch, config.samples - lo)
        lr = max(1e-4, config.lr * (1.0 - lo / config.samples))
        idx = rng.choice(len(edges), size=n, p=edge_probs)
        u, v = sources[idx], targets[idx]
        u_vec = emb[u]
        pos_vec = context[v]
        pos = _sigmoid(np.sum(u_vec * pos_vec, axis=1))
        coeff = (pos - 1.0)[:, None]
        grad_u = coeff * pos_vec
        np.add.at(context, v, -lr * _clip_rows(coeff * u_vec))

        if config.negatives > 0:
            neg = rng.choice(graph.num_nodes, size=(n, config.negatives),
                             p=noise)
            neg_vec = context[neg]
            score = _sigmoid(np.einsum("bd,bkd->bk", u_vec, neg_vec))
            ncoeff = score[:, :, None]
            grad_u += np.einsum("bkd->bd", ncoeff * neg_vec)
            grad_neg = (ncoeff * u_vec[:, None, :]).reshape(
                n * config.negatives, -1)
            np.add.at(context, neg.reshape(-1), -lr * _clip_rows(grad_neg))
        np.add.at(emb, u, -lr * _clip_rows(grad_u))
    return emb


def _clip_rows(grad: np.ndarray, max_norm: float = 1.0) -> np.ndarray:
    """Clip each gradient row's L2 norm.

    With a shared embedding/context table (first-order proximity) the raw
    SGD updates can enter a positive feedback loop on tiny graphs; clipping
    bounds the step size without changing descent directions.
    """
    norms = np.linalg.norm(grad, axis=-1, keepdims=True)
    scale = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
    return grad * scale


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))
