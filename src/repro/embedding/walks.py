"""Random-walk generation over weighted digraphs.

DeepWalk samples uniform (weight-proportional) walks; node2vec biases the
walk with return parameter ``p`` and in-out parameter ``q`` [Grover &
Leskovec 2016].  The paper uses these walks over (a) the line graph of the
road network, with trajectory co-occurrence weights steering transition
probabilities, and (b) the weekly temporal graph.

Two engines per walk type:

* ``generate_walks`` / ``generate_node2vec_walks`` — the **lockstep**
  engine: all walks advance one step per numpy operation.  First-order
  transitions draw from per-node alias tables (O(1) per walker per step);
  node2vec's second-order p/q bias is applied by rejection sampling against
  the max-bias envelope ``max(1, 1/p, 1/q)`` (KnightKing-style): propose a
  first-order step, accept with probability ``bias / envelope``, retry the
  rejected walkers.  Walkers whose current node is a sink retire from the
  frontier, preserving the variable-length walk semantics.
* ``generate_walks_reference`` / ``generate_node2vec_walks_reference`` —
  the original scalar implementations, kept as the behavioural oracle for
  equivalence tests and the speedup benchmark.

Both engines draw from the same per-start distribution over walks; only
the draw *order* from the RNG stream differs, so same-seed outputs are
engine-internally deterministic but not bitwise identical across engines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.linegraph import WeightedDigraph
from .alias import NodeAliasSampler


def require_generator(rng, owner: str) -> np.random.Generator:
    """Embedding pretraining must be reproducible (reprolint D002).

    Seeded node2vec/SGNS initialisation is part of the paper's recipe
    (Section 5.1); an entropy-seeded fallback here silently changes the
    pretrained tables between runs, so callers must thread a Generator.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            f"{owner} requires an explicit np.random.Generator (got "
            f"{type(rng).__name__}); pass np.random.default_rng(seed)")
    return rng


def weighted_choice(rng: np.random.Generator, items: Sequence[int],
                    weights: Sequence[float]) -> int:
    """Sample one item proportionally to non-negative weights.

    All-zero weights fall back to a uniform draw (every item weight 1);
    NaN or negative weights raise — both walk types share this contract.
    """
    w = np.asarray(weights, dtype=float)
    if not np.isfinite(w).all():
        raise ValueError("weights must be finite (got NaN/inf)")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        # All-zero weights: uniform over the items.
        return int(items[rng.integers(len(items))])
    return int(items[rng.choice(len(items), p=w / total)])


# ---------------------------------------------------------------------------
# Lockstep engine.

def _shuffled_starts(num_nodes: int, num_walks: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Start nodes for all rounds, shuffled per round like the reference."""
    rounds = []
    nodes = np.arange(num_nodes)
    for _ in range(num_walks):
        rng.shuffle(nodes)
        rounds.append(nodes.copy())
    return np.concatenate(rounds)


def _rows_to_walks(matrix: np.ndarray) -> List[List[int]]:
    """Trim the -1 padding of retired walkers back into ragged lists."""
    padded = matrix < 0
    lengths = np.where(padded.any(axis=1), padded.argmax(axis=1),
                       matrix.shape[1])
    return [row[:n].tolist() for row, n in zip(matrix, lengths)]


def generate_walks(graph: WeightedDigraph, num_walks: int, walk_length: int,
                   rng: np.random.Generator = None
                   ) -> List[List[int]]:
    """Weight-proportional random walks (DeepWalk-style), lockstep engine.

    ``num_walks`` walks start from every node; walks stop early at sinks.
    ``rng`` is required: walk corpora must be reproducible (D002).
    """
    _validate(num_walks, walk_length)
    rng = require_generator(rng, "generate_walks")
    csr = graph.to_csr()
    sampler = NodeAliasSampler(csr)
    out_degree = csr.out_degree

    starts = _shuffled_starts(graph.num_nodes, num_walks, rng)
    walks = np.full((len(starts), walk_length), -1, dtype=np.int64)
    walks[:, 0] = starts
    active = np.arange(len(starts))
    for t in range(1, walk_length):
        cur = walks[active, t - 1]
        alive = out_degree[cur] > 0
        active = active[alive]
        if not len(active):
            break
        walks[active, t] = sampler.sample_neighbors(rng, cur[alive])
    return _rows_to_walks(walks)


def generate_node2vec_walks(graph: WeightedDigraph, num_walks: int,
                            walk_length: int, p: float = 1.0, q: float = 1.0,
                            rng: np.random.Generator = None
                            ) -> List[List[int]]:
    """node2vec second-order biased walks, lockstep rejection engine.

    The unnormalised probability of stepping from ``cur`` to ``nxt`` given
    the previous node ``prev`` multiplies the edge weight by

    * ``1/p`` when ``nxt == prev`` (return),
    * ``1``   when ``nxt`` is a neighbour of ``prev`` (BFS-like),
    * ``1/q`` otherwise (DFS-like).

    Rather than materialising the O(E * avg_degree) second-order transition
    tables, each step proposes a weight-proportional neighbour from the
    first-order alias table and accepts it with probability
    ``bias / max(1, 1/p, 1/q)``; rejected walkers redraw.  At p = q = 1
    every proposal is accepted and the engine degenerates to first-order
    sampling with zero overhead.
    """
    _validate(num_walks, walk_length)
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    rng = require_generator(rng, "generate_node2vec_walks")
    csr = graph.to_csr()
    sampler = NodeAliasSampler(csr)
    out_degree = csr.out_degree
    n = graph.num_nodes
    # Flat membership key: rows are contiguous and sorted within, so
    # ``u * n + v`` is globally ascending — one searchsorted answers
    # "is v a neighbour of u" for a whole frontier.
    row_of_slot = np.repeat(np.arange(n, dtype=np.int64), out_degree)
    edge_key = row_of_slot * n + csr.indices
    envelope = max(1.0, 1.0 / p, 1.0 / q)

    starts = _shuffled_starts(n, num_walks, rng)
    walks = np.full((len(starts), walk_length), -1, dtype=np.int64)
    walks[:, 0] = starts
    active = np.arange(len(starts))
    for t in range(1, walk_length):
        cur = walks[active, t - 1]
        alive = out_degree[cur] > 0
        active = active[alive]
        if not len(active):
            break
        if t == 1:
            # No previous node yet: plain first-order step.
            walks[active, 1] = sampler.sample_neighbors(rng, cur[alive])
            continue
        undecided = active
        while len(undecided):
            cur = walks[undecided, t - 1]
            prev = walks[undecided, t - 2]
            cand = sampler.sample_neighbors(rng, cur)
            bias = np.full(len(cand), 1.0 / q)
            key = prev * n + cand
            pos = np.searchsorted(edge_key, key)
            is_prev_nbr = (np.take(edge_key, pos, mode="clip") == key)
            bias[is_prev_nbr] = 1.0
            bias[cand == prev] = 1.0 / p
            accept = rng.random(len(cand)) * envelope < bias
            walks[undecided[accept], t] = cand[accept]
            undecided = undecided[~accept]
    return _rows_to_walks(walks)


# ---------------------------------------------------------------------------
# Reference (scalar) engine — the behavioural oracle.

def generate_walks_reference(graph: WeightedDigraph, num_walks: int,
                             walk_length: int,
                             rng: np.random.Generator = None
                             ) -> List[List[int]]:
    """Scalar DeepWalk-style walks: one ``rng.choice`` per step."""
    _validate(num_walks, walk_length)
    rng = require_generator(rng, "generate_walks_reference")
    walks: List[List[int]] = []
    nodes = np.arange(graph.num_nodes)
    for _ in range(num_walks):
        rng.shuffle(nodes)
        for start in nodes:
            walk = [int(start)]
            while len(walk) < walk_length:
                nbrs = graph.neighbors(walk[-1])
                if not nbrs:
                    break
                items = [v for v, _ in nbrs]
                weights = [w for _, w in nbrs]
                walk.append(weighted_choice(rng, items, weights))
            walks.append(walk)
    return walks


def generate_node2vec_walks_reference(
        graph: WeightedDigraph, num_walks: int, walk_length: int,
        p: float = 1.0, q: float = 1.0,
        rng: np.random.Generator = None) -> List[List[int]]:
    """Scalar node2vec walks: per-step biased ``rng.choice``."""
    _validate(num_walks, walk_length)
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    rng = require_generator(rng, "generate_node2vec_walks_reference")
    # Neighbour-set cache for the prev-adjacency test.
    nbr_sets: Dict[int, set] = {}

    def neighbors_of(u: int) -> set:
        if u not in nbr_sets:
            nbr_sets[u] = {v for v, _ in graph.neighbors(u)}
        return nbr_sets[u]

    walks: List[List[int]] = []
    nodes = np.arange(graph.num_nodes)
    for _ in range(num_walks):
        rng.shuffle(nodes)
        for start in nodes:
            walk = [int(start)]
            while len(walk) < walk_length:
                cur = walk[-1]
                nbrs = graph.neighbors(cur)
                if not nbrs:
                    break
                raw = [w for _, w in nbrs]
                if sum(raw) <= 0:
                    # All-zero edge weights: uniform base, like the
                    # first-order fallback — the p/q bias still applies.
                    raw = [1.0] * len(nbrs)
                if len(walk) == 1:
                    items = [v for v, _ in nbrs]
                    weights = raw
                else:
                    prev = walk[-2]
                    prev_nbrs = neighbors_of(prev)
                    items, weights = [], []
                    for (v, _), w in zip(nbrs, raw):
                        if v == prev:
                            bias = 1.0 / p
                        elif v in prev_nbrs:
                            bias = 1.0
                        else:
                            bias = 1.0 / q
                        items.append(v)
                        weights.append(w * bias)
                walk.append(weighted_choice(rng, items, weights))
            walks.append(walk)
    return walks


def _validate(num_walks: int, walk_length: int) -> None:
    if num_walks < 1:
        raise ValueError("num_walks must be >= 1")
    if walk_length < 2:
        raise ValueError("walk_length must be >= 2")
