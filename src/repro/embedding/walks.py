"""Random-walk generation over weighted digraphs.

DeepWalk samples uniform (weight-proportional) walks; node2vec biases the
walk with return parameter ``p`` and in-out parameter ``q`` [Grover &
Leskovec 2016].  The paper uses these walks over (a) the line graph of the
road network, with trajectory co-occurrence weights steering transition
probabilities, and (b) the weekly temporal graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.linegraph import WeightedDigraph


def weighted_choice(rng: np.random.Generator, items: Sequence[int],
                    weights: Sequence[float]) -> int:
    """Sample one item proportionally to non-negative weights."""
    w = np.asarray(weights, dtype=float)
    total = w.sum()
    if total <= 0:
        # All-zero weights: fall back to uniform.
        return int(items[rng.integers(len(items))])
    return int(items[rng.choice(len(items), p=w / total)])


def generate_walks(graph: WeightedDigraph, num_walks: int, walk_length: int,
                   rng: Optional[np.random.Generator] = None
                   ) -> List[List[int]]:
    """Weight-proportional random walks (DeepWalk-style).

    ``num_walks`` walks start from every node; walks stop early at sinks.
    """
    _validate(num_walks, walk_length)
    rng = rng or np.random.default_rng()
    walks: List[List[int]] = []
    nodes = np.arange(graph.num_nodes)
    for _ in range(num_walks):
        rng.shuffle(nodes)
        for start in nodes:
            walk = [int(start)]
            while len(walk) < walk_length:
                nbrs = graph.neighbors(walk[-1])
                if not nbrs:
                    break
                items = [v for v, _ in nbrs]
                weights = [w for _, w in nbrs]
                walk.append(weighted_choice(rng, items, weights))
            walks.append(walk)
    return walks


def generate_node2vec_walks(graph: WeightedDigraph, num_walks: int,
                            walk_length: int, p: float = 1.0, q: float = 1.0,
                            rng: Optional[np.random.Generator] = None
                            ) -> List[List[int]]:
    """node2vec second-order biased walks.

    The unnormalised probability of stepping from ``cur`` to ``nxt`` given
    the previous node ``prev`` multiplies the edge weight by

    * ``1/p`` when ``nxt == prev`` (return),
    * ``1``   when ``nxt`` is a neighbour of ``prev`` (BFS-like),
    * ``1/q`` otherwise (DFS-like).
    """
    _validate(num_walks, walk_length)
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    rng = rng or np.random.default_rng()
    # Neighbour-set cache for the prev-adjacency test.
    nbr_sets: Dict[int, set] = {}

    def neighbors_of(u: int) -> set:
        if u not in nbr_sets:
            nbr_sets[u] = {v for v, _ in graph.neighbors(u)}
        return nbr_sets[u]

    walks: List[List[int]] = []
    nodes = np.arange(graph.num_nodes)
    for _ in range(num_walks):
        rng.shuffle(nodes)
        for start in nodes:
            walk = [int(start)]
            while len(walk) < walk_length:
                cur = walk[-1]
                nbrs = graph.neighbors(cur)
                if not nbrs:
                    break
                if len(walk) == 1:
                    items = [v for v, _ in nbrs]
                    weights = [w for _, w in nbrs]
                else:
                    prev = walk[-2]
                    prev_nbrs = neighbors_of(prev)
                    items, weights = [], []
                    for v, w in nbrs:
                        if v == prev:
                            bias = 1.0 / p
                        elif v in prev_nbrs:
                            bias = 1.0
                        else:
                            bias = 1.0 / q
                        items.append(v)
                        weights.append(w * bias)
                walk.append(weighted_choice(rng, items, weights))
            walks.append(walk)
    return walks


def _validate(num_walks: int, walk_length: int) -> None:
    if num_walks < 1:
        raise ValueError("num_walks must be >= 1")
    if walk_length < 2:
        raise ValueError("walk_length must be >= 2")
