"""Skip-gram with negative sampling (SGNS), vectorised in numpy.

The word2vec-style objective underlying both DeepWalk and node2vec: for
every (center, context) pair harvested from random walks within a window,
maximise ``log sigma(u_c . v_ctx)`` while pushing down ``k`` negatives drawn
from the unigram^{3/4} distribution.  Gradients are applied with plain SGD
and a linearly decaying learning rate, matching the reference
implementations closely enough for initialisation purposes.

Two trainers:

* ``train_skipgram`` — the fast path.  Pairs are harvested with
  sliding-window index arithmetic (one numpy op per window offset instead
  of a Python triple loop); negatives come from an
  :class:`~.alias.AliasTable` over the noise distribution (O(1) per draw
  instead of ``rng.choice(p=...)`` rebuilding a CDF) and are shared within
  blocks of pairs so the negative term becomes batched GEMM; parameters
  live in one float32 buffer updated by a single sort + ``reduceat``
  segment-sum scatter per chunk.  Updates are applied in chunks of
  ``max(batch_size, 8192)`` pairs with the same endpoint-matched linear
  lr decay.
* ``train_skipgram_reference`` — the original scalar-harvest /
  ``rng.choice`` / ``np.add.at`` implementation, retained as the
  behavioural oracle for equivalence tests and the speedup benchmark.

Both optimise the same objective in expectation; their outputs are
statistically interchangeable downstream (tested via same-seed DeepOD
smoke comparisons), not bitwise equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:                                    # scipy is optional at runtime: the
    from scipy import sparse as _sparse  # sparse-matmul scatter is ~10x the
except ImportError:                      # sort+reduceat fallback
    _sparse = None

from .alias import AliasTable
from .walks import require_generator

# Pairs per fast-path parameter update (upper bound — small pair sets use
# smaller chunks so SGD still takes enough steps; an explicitly larger
# ``batch_size`` wins) and the sub-block width that shares one negative set.
_FAST_CHUNK = 8192
_NEG_BLOCK = 512
# Minimum parameter updates per epoch the chunk size is shrunk to provide.
_MIN_UPDATES = 16


@dataclass
class SkipGramConfig:
    dim: int = 64
    window: int = 5
    negatives: int = 5
    epochs: int = 2
    lr: float = 0.025
    min_lr: float = 0.0001
    batch_size: int = 512

    def __post_init__(self):
        if self.dim < 1 or self.window < 1 or self.negatives < 0:
            raise ValueError("invalid skip-gram configuration")
        if self.epochs < 1 or self.lr <= 0:
            raise ValueError("invalid training configuration")


def build_pairs(walks: Sequence[Sequence[int]], window: int) -> np.ndarray:
    """Harvest (center, context) pairs within ``window`` of each other.

    Vectorised: walks are grouped by length, and for every offset
    ``d = 1..window`` the (i, i+d) and (i+d, i) pairs of a whole group
    fall out of two array slices.  The result is the same pair *multiset*
    as the reference triple loop, in a different order — SGNS shuffles
    pairs before every epoch, so order is immaterial.
    """
    groups: Dict[int, List[Sequence[int]]] = {}
    for walk in walks:
        groups.setdefault(len(walk), []).append(walk)
    chunks: List[np.ndarray] = []
    for length, group in sorted(groups.items()):
        if length < 2:
            continue
        mat = np.asarray(group, dtype=np.int64)        # (k, length)
        for d in range(1, min(window, length - 1) + 1):
            left = mat[:, :length - d].ravel()
            right = mat[:, d:].ravel()
            chunks.append(np.stack([left, right], axis=1))
            chunks.append(np.stack([right, left], axis=1))
    if not chunks:
        raise ValueError("no training pairs: walks too short?")
    return np.concatenate(chunks, axis=0)


def build_pairs_reference(walks: Sequence[Sequence[int]], window: int
                          ) -> np.ndarray:
    """Scalar pair harvest (the original triple loop)."""
    pairs: List[Tuple[int, int]] = []
    for walk in walks:
        n = len(walk)
        for i, center in enumerate(walk):
            lo = max(0, i - window)
            hi = min(n, i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    pairs.append((center, walk[j]))
    if not pairs:
        raise ValueError("no training pairs: walks too short?")
    return np.asarray(pairs, dtype=np.int64)


def unigram_distribution(walks: Sequence[Sequence[int]], num_nodes: int,
                         power: float = 0.75) -> np.ndarray:
    """Noise distribution proportional to count^power (word2vec default).

    Only nodes that actually appear in the walks carry noise mass —
    word2vec draws negatives from the *observed* vocabulary, and granting
    smoothed mass to never-visited nodes dilutes the negatives toward
    nodes the model has no positive signal for.  Degenerate vocabularies
    (zero or one distinct node) fall back to uniform over all nodes so
    negative sampling stays well-defined.
    """
    flat = (np.concatenate([np.asarray(w, dtype=np.int64) for w in walks])
            if len(walks) else np.empty(0, dtype=np.int64))
    # repro: allow[N001] float64 counts keep the cumsum normalisation exact
    counts = np.bincount(flat, minlength=num_nodes).astype(np.float64)
    observed = counts > 0
    if observed.sum() <= 1:
        return np.full(num_nodes, 1.0 / num_nodes)
    # repro: allow[N001] noise distribution feeds AliasTable, which is float64
    dist = np.zeros(num_nodes, dtype=np.float64)
    dist[observed] = counts[observed] ** power
    return dist / dist.sum()


def _scatter_add(target: np.ndarray, idx: np.ndarray,
                 updates: np.ndarray, scale: float) -> None:
    """``target[idx] += scale * updates`` with repeated indices.

    With scipy: one sparse (rows, m) selection matrix times the update
    block — a compiled gather-accumulate, the fastest scatter numpy can
    reach from Python.  Without scipy: group repeats with an integer sort
    and segment-sum with ``np.add.reduceat``.  ``scale`` (the -lr factor)
    is applied to the reduced sums, one small array instead of the full
    update matrix.
    """
    m = len(idx)
    if _sparse is not None:
        sel = _sparse.csc_matrix(
            (np.full(m, scale, dtype=updates.dtype),
             idx.astype(np.int32, copy=False),
             np.arange(m + 1, dtype=np.int32)),
            shape=(len(target), m))
        target += sel @ updates
        return
    order = np.argsort(idx)             # sums commute: stability not needed
    idx_sorted = idx[order]
    seg_starts = np.flatnonzero(
        np.r_[True, idx_sorted[1:] != idx_sorted[:-1]])
    sums = np.add.reduceat(updates[order], seg_starts, axis=0)
    sums *= scale
    target[idx_sorted[seg_starts]] += sums


def train_skipgram(walks: Sequence[Sequence[int]], num_nodes: int,
                   config: Optional[SkipGramConfig] = None,
                   rng: np.random.Generator = None) -> np.ndarray:
    """Train SGNS over walks; returns the (num_nodes, dim) input embeddings.

    Fast path: vectorised pair harvest, alias-sampled block-shared
    negatives (GEMM negative term), float32 parameters in one stacked
    buffer, and a single segment-sum scatter per chunk.  ``rng`` is
    required: pretraining must be reproducible (D002).
    """
    config = config or SkipGramConfig()
    rng = require_generator(rng, "train_skipgram")
    pairs = build_pairs(walks, config.window)
    noise = AliasTable(unigram_distribution(walks, num_nodes))
    dim, k = config.dim, config.negatives
    # Large pair sets amortise per-chunk overhead at _FAST_CHUNK; small
    # ones shrink the chunk so each epoch still takes >= _MIN_UPDATES SGD
    # steps (one huge stale step trains poorly on tiny graphs).
    chunk = max(config.batch_size,
                min(_FAST_CHUNK, max(1, len(pairs) // _MIN_UPDATES)))

    # One (2V, D) buffer: rows [0, V) are the center (input) embeddings,
    # rows [V, 2V) the context (output) embeddings, so both matrices take
    # part in one combined scatter per chunk.
    params = np.zeros((2 * num_nodes, dim), dtype=np.float32)
    params[:num_nodes] = ((rng.random((num_nodes, dim)) - 0.5)
                          / dim).astype(np.float32)

    total_steps = config.epochs * int(np.ceil(len(pairs) / chunk))
    step = 0
    for _ in range(config.epochs):
        order = rng.permutation(len(pairs))
        for lo in range(0, len(pairs), chunk):
            batch = pairs[order[lo:lo + chunk]]
            lr = max(config.min_lr,
                     config.lr * (1.0 - step / max(total_steps, 1)))
            _sgns_chunk_fast(params, num_nodes, batch, noise, k, lr, rng)
            step += 1
    # repro: allow[N001] public API returns the framework's float64 dtype
    return params[:num_nodes].astype(np.float64)


def _sgns_chunk_fast(params: np.ndarray, num_nodes: int, batch: np.ndarray,
                     noise: AliasTable, negatives: int, lr: float,
                     rng: np.random.Generator) -> None:
    """One fast-path update: full blocks of ``_NEG_BLOCK`` pairs share a
    negative sample set each (negative scores/gradients become batched
    GEMM); the ragged tail forms one block of its own."""
    m = len(batch)
    # Sharing K negatives across a block is harmless when the vocabulary
    # dwarfs the block (any row rarely repeats) but degrades small graphs:
    # with block >> V each sampled negative absorbs one huge summed push
    # per chunk instead of many small ones.  Small vocabularies therefore
    # keep per-pair negatives — still alias-sampled and scatter-batched,
    # and cheap at that size.
    share = num_nodes > _NEG_BLOCK and negatives > 0
    block = _NEG_BLOCK if share else m
    nb, width = divmod(m, block)
    splits = ([(nb, block)] if width == 0
              else [(nb, block), (1, width)] if nb
              else [(1, width)])
    done = 0
    for blocks, block_w in splits:
        rows = batch[done:done + blocks * block_w]
        done += blocks * block_w
        centers = rows[:, 0]
        contexts = rows[:, 1] + num_nodes      # context rows live at +V
        c_vecs = params[centers]               # (m', D) float32
        p_vecs = params[contexts]
        pos_score = _sigmoid(np.einsum("md,md->m", c_vecs, p_vecs))
        pos_coeff = (pos_score - 1.0)[:, None]     # d/dx of -log sigma
        grad_center = pos_coeff * p_vecs
        grad_pos = pos_coeff * c_vecs
        if negatives > 0 and share:
            negs = noise.draw(rng, (blocks, negatives))
            n_vecs = params[negs + num_nodes]       # (blocks, K, D)
            c_blk = c_vecs.reshape(blocks, block_w, -1)
            neg_score = _sigmoid(
                np.matmul(c_blk, n_vecs.transpose(0, 2, 1)))
            grad_center += np.matmul(neg_score, n_vecs).reshape(
                len(rows), -1)
            grad_neg = np.matmul(
                neg_score.transpose(0, 2, 1), c_blk).reshape(
                    blocks * negatives, -1)
            ctx_idx = np.concatenate(
                [centers, contexts, negs.reshape(-1) + num_nodes])
            ctx_upd = np.concatenate([grad_center, grad_pos, grad_neg])
        elif negatives > 0:
            negs = noise.draw(rng, (len(rows), negatives))
            n_vecs = params[negs + num_nodes]       # (m', K, D)
            neg_score = _sigmoid(
                np.einsum("md,mkd->mk", c_vecs, n_vecs))
            neg_coeff = neg_score[:, :, None]
            grad_center += np.einsum("mkd->md", neg_coeff * n_vecs)
            grad_neg = (neg_coeff * c_vecs[:, None, :]).reshape(
                len(rows) * negatives, -1)
            ctx_idx = np.concatenate(
                [centers, contexts, negs.reshape(-1) + num_nodes])
            ctx_upd = np.concatenate([grad_center, grad_pos, grad_neg])
        else:
            ctx_idx = np.concatenate([centers, contexts])
            ctx_upd = np.concatenate([grad_center, grad_pos])
        _scatter_add(params, ctx_idx, ctx_upd, np.float32(-lr))


def train_skipgram_reference(walks: Sequence[Sequence[int]], num_nodes: int,
                             config: Optional[SkipGramConfig] = None,
                             rng: np.random.Generator = None
                             ) -> np.ndarray:
    """Original scalar-harvest / ``rng.choice`` / ``np.add.at`` SGNS."""
    config = config or SkipGramConfig()
    rng = require_generator(rng, "train_skipgram_reference")
    pairs = build_pairs_reference(walks, config.window)
    noise = unigram_distribution(walks, num_nodes)

    center_emb = (rng.random((num_nodes, config.dim)) - 0.5) / config.dim
    context_emb = np.zeros((num_nodes, config.dim))

    total_steps = config.epochs * int(np.ceil(len(pairs) / config.batch_size))
    step = 0
    for _ in range(config.epochs):
        order = rng.permutation(len(pairs))
        for lo in range(0, len(pairs), config.batch_size):
            batch = pairs[order[lo:lo + config.batch_size]]
            lr = max(config.min_lr,
                     config.lr * (1.0 - step / max(total_steps, 1)))
            _sgns_step_reference(center_emb, context_emb, batch, noise,
                                 config.negatives, lr, rng)
            step += 1
    return center_emb


def _sgns_step_reference(center_emb: np.ndarray, context_emb: np.ndarray,
                         batch: np.ndarray, noise: np.ndarray,
                         negatives: int, lr: float,
                         rng: np.random.Generator) -> None:
    centers = batch[:, 0]
    contexts = batch[:, 1]
    b = len(batch)
    c_vecs = center_emb[centers]                       # (B, D)

    # Positive examples.
    pos_vecs = context_emb[contexts]
    pos_score = _sigmoid(np.sum(c_vecs * pos_vecs, axis=1))
    pos_coeff = (pos_score - 1.0)[:, None]             # d/dx of -log sigma
    grad_center = pos_coeff * pos_vecs
    grad_pos = pos_coeff * c_vecs
    np.add.at(context_emb, contexts, -lr * grad_pos)

    # Negative examples.
    if negatives > 0:
        neg = rng.choice(len(noise), size=(b, negatives), p=noise)
        neg_vecs = context_emb[neg]                    # (B, K, D)
        neg_score = _sigmoid(np.einsum("bd,bkd->bk", c_vecs, neg_vecs))
        neg_coeff = neg_score[:, :, None]
        grad_center += np.einsum("bkd->bd", neg_coeff * neg_vecs)
        grad_neg = neg_coeff * c_vecs[:, None, :]
        np.add.at(context_emb, neg.reshape(-1),
                  -lr * grad_neg.reshape(b * negatives, -1))

    np.add.at(center_emb, centers, -lr * grad_center)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))
