"""Skip-gram with negative sampling (SGNS), vectorised in numpy.

The word2vec-style objective underlying both DeepWalk and node2vec: for
every (center, context) pair harvested from random walks within a window,
maximise ``log sigma(u_c . v_ctx)`` while pushing down ``k`` negatives drawn
from the unigram^{3/4} distribution.  Gradients are applied with plain SGD
and a linearly decaying learning rate, matching the reference
implementations closely enough for initialisation purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class SkipGramConfig:
    dim: int = 64
    window: int = 5
    negatives: int = 5
    epochs: int = 2
    lr: float = 0.025
    min_lr: float = 0.0001
    batch_size: int = 512

    def __post_init__(self):
        if self.dim < 1 or self.window < 1 or self.negatives < 0:
            raise ValueError("invalid skip-gram configuration")
        if self.epochs < 1 or self.lr <= 0:
            raise ValueError("invalid training configuration")


def build_pairs(walks: Sequence[Sequence[int]], window: int
                ) -> np.ndarray:
    """Harvest (center, context) pairs within ``window`` of each other."""
    pairs: List[Tuple[int, int]] = []
    for walk in walks:
        n = len(walk)
        for i, center in enumerate(walk):
            lo = max(0, i - window)
            hi = min(n, i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    pairs.append((center, walk[j]))
    if not pairs:
        raise ValueError("no training pairs: walks too short?")
    return np.asarray(pairs, dtype=np.int64)


def unigram_distribution(walks: Sequence[Sequence[int]], num_nodes: int,
                         power: float = 0.75) -> np.ndarray:
    """Noise distribution proportional to count^power (word2vec default)."""
    counts = np.zeros(num_nodes, dtype=float)
    for walk in walks:
        for node in walk:
            counts[node] += 1.0
    counts = np.maximum(counts, 1e-3) ** power
    return counts / counts.sum()


def train_skipgram(walks: Sequence[Sequence[int]], num_nodes: int,
                   config: Optional[SkipGramConfig] = None,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Train SGNS over walks; returns the (num_nodes, dim) input embeddings."""
    config = config or SkipGramConfig()
    rng = rng or np.random.default_rng()
    pairs = build_pairs(walks, config.window)
    noise = unigram_distribution(walks, num_nodes)

    center_emb = (rng.random((num_nodes, config.dim)) - 0.5) / config.dim
    context_emb = np.zeros((num_nodes, config.dim))

    total_steps = config.epochs * int(np.ceil(len(pairs) / config.batch_size))
    step = 0
    for _ in range(config.epochs):
        order = rng.permutation(len(pairs))
        for lo in range(0, len(pairs), config.batch_size):
            batch = pairs[order[lo:lo + config.batch_size]]
            lr = max(config.min_lr,
                     config.lr * (1.0 - step / max(total_steps, 1)))
            _sgns_step(center_emb, context_emb, batch, noise,
                       config.negatives, lr, rng)
            step += 1
    return center_emb


def _sgns_step(center_emb: np.ndarray, context_emb: np.ndarray,
               batch: np.ndarray, noise: np.ndarray, negatives: int,
               lr: float, rng: np.random.Generator) -> None:
    centers = batch[:, 0]
    contexts = batch[:, 1]
    b = len(batch)
    c_vecs = center_emb[centers]                       # (B, D)

    # Positive examples.
    pos_vecs = context_emb[contexts]
    pos_score = _sigmoid(np.sum(c_vecs * pos_vecs, axis=1))
    pos_coeff = (pos_score - 1.0)[:, None]             # d/dx of -log sigma
    grad_center = pos_coeff * pos_vecs
    grad_pos = pos_coeff * c_vecs
    np.add.at(context_emb, contexts, -lr * grad_pos)

    # Negative examples.
    if negatives > 0:
        neg = rng.choice(len(noise), size=(b, negatives), p=noise)
        neg_vecs = context_emb[neg]                    # (B, K, D)
        neg_score = _sigmoid(np.einsum("bd,bkd->bk", c_vecs, neg_vecs))
        neg_coeff = neg_score[:, :, None]
        grad_center += np.einsum("bkd->bd", neg_coeff * neg_vecs)
        grad_neg = neg_coeff * c_vecs[:, None, :]
        np.add.at(context_emb, neg.reshape(-1),
                  -lr * grad_neg.reshape(b * negatives, -1))

    np.add.at(center_emb, centers, -lr * grad_center)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))
