"""O(1) discrete sampling via Vose's alias method [Vose 1991; Walker 1977].

Embedding pre-training is dominated by discrete draws: every walk step
samples a neighbour and every SGNS step samples negatives.  ``rng.choice``
with explicit probabilities rebuilds a CDF on every call — O(n) per draw —
which is what made ``repro.embedding`` the bottleneck of the efficiency
benchmarks (paper Section 5.1, Tables 5-6 measure exactly this pre-training
cost).  An alias table costs O(n) once, then every draw is O(1): pick a
column uniformly, flip a biased coin, take the column or its alias.

Two samplers live here:

* :class:`AliasTable` — one distribution (SGNS unigram^{3/4} negatives);
* :class:`NodeAliasSampler` — one table per node of a CSR graph, flattened
  into the CSR slot arrays, so a *batch* of walkers advances with a single
  pair of ``rng.random`` vectors regardless of node degrees.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np


def _validate_weights(w: np.ndarray) -> None:
    if w.ndim != 1 or w.size == 0:
        raise ValueError("alias table needs a non-empty 1-D weight vector")
    if not np.isfinite(w).all():
        raise ValueError("alias weights must be finite (got NaN/inf)")
    if (w < 0).any():
        raise ValueError("alias weights must be non-negative")


def _vose_build(weights: np.ndarray, prob: np.ndarray, alias: np.ndarray,
                base: int = 0) -> None:
    """Fill ``prob``/``alias`` (views of length n) for one distribution.

    ``alias`` receives *absolute* slot ids offset by ``base`` so per-node
    tables can share one flat array aligned with CSR slots.
    """
    n = len(weights)
    scaled = weights * (n / weights.sum())
    prob[:] = 1.0
    alias[:] = base + np.arange(n)
    small = np.flatnonzero(scaled < 1.0).tolist()
    large = np.flatnonzero(scaled >= 1.0).tolist()
    while small and large:
        s = small.pop()
        l = large[-1]
        prob[s] = scaled[s]
        alias[s] = base + l
        scaled[l] -= 1.0 - scaled[s]
        if scaled[l] < 1.0:
            large.pop()
            small.append(l)
    # Leftovers (either stack) keep prob = 1 up to float round-off.


class AliasTable:
    """Alias sampler for one fixed discrete distribution.

    Build is O(n); ``draw`` is O(1) per sample and fully batched: a draw of
    any shape consumes exactly one pair of ``rng.random`` arrays.
    """

    __slots__ = ("n", "prob", "alias")

    def __init__(self, weights) -> None:
        w = np.asarray(weights, dtype=np.float64).copy()
        _validate_weights(w)
        if w.sum() <= 0:
            raise ValueError("alias weights must have positive total")
        self.n = len(w)
        self.prob = np.empty(self.n, dtype=np.float64)
        self.alias = np.empty(self.n, dtype=np.int64)
        _vose_build(w, self.prob, self.alias)

    def draw(self, rng: np.random.Generator,
             size: Union[int, Tuple[int, ...], None] = None) -> np.ndarray:
        """Sample indices; ``size`` follows numpy conventions."""
        shape = () if size is None else size
        k = np.asarray(rng.random(shape) * self.n, dtype=np.int64)
        k = np.minimum(k, self.n - 1)        # guard the 1.0-eps edge
        take_alias = rng.random(shape) >= self.prob[k]
        return np.where(take_alias, self.alias[k], k)


class NodeAliasSampler:
    """Per-node alias tables over a CSR adjacency, flattened to CSR slots.

    Row ``u`` owns slots ``indptr[u]:indptr[u+1]``; ``prob``/``alias`` are
    parallel to ``indices``/``weights`` and alias entries store absolute
    slot ids, so one gather advances every walker in a frontier at once.
    Rows whose weights sum to zero fall back to a uniform distribution over
    their out-neighbours — the same convention for DeepWalk and node2vec
    walks (the second-order bias is applied downstream by rejection).
    """

    def __init__(self, csr) -> None:
        indptr = np.asarray(csr.indptr, dtype=np.int64)
        indices = np.asarray(csr.indices, dtype=np.int64)
        weights = np.asarray(csr.weights, dtype=np.float64)
        if weights.size:
            _validate_weights(weights)
        self.indptr = indptr
        self.indices = indices
        self.out_degree = np.diff(indptr)
        self.prob = np.ones(len(indices), dtype=np.float64)
        self.alias = np.arange(len(indices), dtype=np.int64)
        for u in range(len(indptr) - 1):
            lo, hi = indptr[u], indptr[u + 1]
            if hi == lo:
                continue
            w = weights[lo:hi].copy()
            if w.sum() <= 0:
                w[:] = 1.0               # uniform fallback on all-zero rows
            _vose_build(w, self.prob[lo:hi], self.alias[lo:hi], base=lo)

    def sample_neighbors(self, rng: np.random.Generator,
                         nodes: np.ndarray) -> np.ndarray:
        """One weight-proportional out-neighbour per node (batched O(1)).

        Every node must have out-degree >= 1; callers retire sinks first.
        """
        deg = self.out_degree[nodes]
        k = (rng.random(len(nodes)) * deg).astype(np.int64)
        np.minimum(k, deg - 1, out=k)
        slot = self.indptr[nodes] + k
        take_alias = rng.random(len(nodes)) >= self.prob[slot]
        slot = np.where(take_alias, self.alias[slot], slot)
        return self.indices[slot]
