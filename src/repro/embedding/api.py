"""Unified dispatcher for the three graph-embedding methods (Algorithm 1
lines 1-4 call node2vec; Section 5 notes DeepWalk and LINE were also tried
and node2vec won)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..obs.tracing import NULL_TRACER, Tracer
from ..roadnet.linegraph import WeightedDigraph
from .line import LineConfig, train_line
from .skipgram import (
    SkipGramConfig, train_skipgram, train_skipgram_reference,
)
from .walks import (
    generate_node2vec_walks, generate_node2vec_walks_reference,
    generate_walks, generate_walks_reference,
)


@dataclass
class EmbeddingConfig:
    """Parameters shared by the walk-based methods plus dispatch choice."""

    method: str = "node2vec"     # node2vec | deepwalk | line
    dim: int = 64
    num_walks: int = 4
    walk_length: int = 20
    window: int = 5
    negatives: int = 5
    epochs: int = 2
    p: float = 1.0               # node2vec return parameter
    q: float = 2.0               # node2vec in-out parameter (DFS-ish)
    line_samples: int = 50_000
    seed: int = 0
    # ``vectorized`` runs the alias-sampled lockstep walk engine and the
    # fast SGNS; ``reference`` runs the retained scalar oracle (same
    # distribution over walks/pairs, ~an order of magnitude slower).
    # LINE has a single implementation and ignores this knob.
    engine: str = "vectorized"   # vectorized | reference

    def __post_init__(self):
        if self.method not in ("node2vec", "deepwalk", "line"):
            raise ValueError(f"unknown embedding method {self.method!r}")
        if self.engine not in ("vectorized", "reference"):
            raise ValueError(f"unknown embedding engine {self.engine!r}")


def embed_graph(graph: WeightedDigraph,
                config: Optional[EmbeddingConfig] = None,
                tracer: Optional[Tracer] = None) -> np.ndarray:
    """Embed all nodes of ``graph``; returns (num_nodes, dim).

    ``node2vec`` / ``deepwalk`` sample walks then train SGNS; ``line``
    trains directly on weighted edge samples.  ``tracer`` receives one
    span per stage (walk sampling, SGNS training, LINE training).
    """
    config = config or EmbeddingConfig()
    tracer = tracer or NULL_TRACER
    rng = np.random.default_rng(config.seed)
    if config.method == "line":
        line_cfg = LineConfig(dim=config.dim, samples=config.line_samples,
                              negatives=config.negatives)
        with tracer.span("embed.line", nodes=graph.num_nodes,
                         samples=config.line_samples, dim=config.dim):
            return train_line(graph, line_cfg, rng)

    vectorized = config.engine == "vectorized"
    with tracer.span("embed.walks", method=config.method,
                     engine=config.engine, nodes=graph.num_nodes,
                     num_walks=config.num_walks,
                     walk_length=config.walk_length):
        if config.method == "node2vec":
            walk_fn = (generate_node2vec_walks if vectorized
                       else generate_node2vec_walks_reference)
            walks = walk_fn(graph, config.num_walks, config.walk_length,
                            p=config.p, q=config.q, rng=rng)
        else:
            walk_fn = (generate_walks if vectorized
                       else generate_walks_reference)
            walks = walk_fn(graph, config.num_walks, config.walk_length,
                            rng=rng)
        tracer.add("walks", len(walks))
    sg_cfg = SkipGramConfig(dim=config.dim, window=config.window,
                            negatives=config.negatives, epochs=config.epochs)
    sg_fn = train_skipgram if vectorized else train_skipgram_reference
    with tracer.span("embed.sgns", engine=config.engine, dim=config.dim,
                     epochs=config.epochs, window=config.window):
        return sg_fn(walks, graph.num_nodes, sg_cfg, rng)
