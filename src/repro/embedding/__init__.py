"""Graph-embedding substrate: DeepWalk, node2vec and LINE in numpy, used to
initialise the road-segment matrix Ws and the time-slot matrix Wt
(Algorithm 1, lines 1-4).

Walk generation and SGNS run on the alias-sampled lockstep engine by
default; the scalar originals are retained as ``*_reference`` oracles
(select them with ``EmbeddingConfig(engine="reference")``)."""

from .alias import AliasTable, NodeAliasSampler
from .api import EmbeddingConfig, embed_graph
from .line import LineConfig, train_line
from .skipgram import (
    SkipGramConfig, build_pairs, build_pairs_reference, train_skipgram,
    train_skipgram_reference, unigram_distribution,
)
from .walks import (
    generate_node2vec_walks, generate_node2vec_walks_reference,
    generate_walks, generate_walks_reference, weighted_choice,
)

__all__ = [
    "AliasTable", "NodeAliasSampler",
    "EmbeddingConfig", "embed_graph",
    "LineConfig", "train_line",
    "SkipGramConfig", "build_pairs", "build_pairs_reference",
    "train_skipgram", "train_skipgram_reference",
    "unigram_distribution",
    "generate_node2vec_walks", "generate_node2vec_walks_reference",
    "generate_walks", "generate_walks_reference", "weighted_choice",
]
