"""Graph-embedding substrate: DeepWalk, node2vec and LINE in numpy, used to
initialise the road-segment matrix Ws and the time-slot matrix Wt
(Algorithm 1, lines 1-4)."""

from .api import EmbeddingConfig, embed_graph
from .line import LineConfig, train_line
from .skipgram import (
    SkipGramConfig, build_pairs, train_skipgram, unigram_distribution,
)
from .walks import generate_node2vec_walks, generate_walks, weighted_choice

__all__ = [
    "EmbeddingConfig", "embed_graph",
    "LineConfig", "train_line",
    "SkipGramConfig", "build_pairs", "train_skipgram",
    "unigram_distribution",
    "generate_node2vec_walks", "generate_walks", "weighted_choice",
]
