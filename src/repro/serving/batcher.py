"""Micro-batching: coalesce single queries into vectorised batches.

DeepOD's prediction path (M_O + M_E, the paper's Table 5 "estimation
time") is a stack of matrix multiplies whose fixed per-call overhead
dwarfs the marginal cost of one extra row — a batch of 256 queries costs
barely more than a batch of 1.  The micro-batcher exploits that: callers
submit one query at a time and receive a future; a worker drains the
queue whenever ``max_batch`` queries are waiting or the oldest has
waited ``max_wait_s``, runs one vectorised call, and resolves all the
futures.  This is the standard latency/throughput knob of model servers
(clipper-style adaptive batching, simplified).

The class is usable two ways:

* **threaded** — ``start()`` spawns a worker; ``submit()`` is then safe
  from any number of request threads (the HTTP front-end uses this);
* **manually driven** — without ``start()``, the owner calls ``flush()``
  or ``maybe_flush(now)``; tests drive timeout behaviour with a fake
  clock this way.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence, Tuple


class MicroBatcher:
    """Coalesces submitted items into calls of ``handler(items) -> results``.

    Parameters
    ----------
    handler:
        Called with a list of items; must return one result per item, in
        order.  If it raises, the exception is propagated into every
        future of that batch (callers fail individually, the worker
        survives).
    max_batch:
        Flush as soon as this many items are queued.
    max_wait_s:
        Flush when the oldest queued item has waited this long, even if
        the batch is not full (the latency bound).
    clock:
        Monotonic time source; injectable for deterministic tests.
    on_batch:
        Optional callback ``on_batch(batch_size)`` fired after every
        flush — the service uses it to feed the batch-size histogram.
    """

    def __init__(self, handler: Callable[[List[object]], Sequence[object]],
                 max_batch: int = 64, max_wait_s: float = 0.005,
                 clock: Callable[[], float] = time.monotonic,
                 on_batch: Optional[Callable[[int], None]] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.handler = handler
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.clock = clock
        self.on_batch = on_batch
        self._queue: List[Tuple[object, Future, float]] = []
        self._cond = threading.Condition()
        self._worker: Optional[threading.Thread] = None
        self._running = False

    # -- submission ------------------------------------------------------
    def submit(self, item: object) -> Future:
        """Queue one item; the returned future resolves after a flush."""
        future: Future = Future()
        with self._cond:
            self._queue.append((item, future, self.clock()))
            self._cond.notify()
        return future

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- flushing --------------------------------------------------------
    def _take_batch_locked(self) -> List[Tuple[object, Future, float]]:
        batch = self._queue[:self.max_batch]
        del self._queue[:self.max_batch]
        return batch

    def _run_batch(self, batch: List[Tuple[object, Future, float]]) -> None:
        if not batch:
            return
        items = [item for item, _, _ in batch]
        try:
            results = self.handler(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"handler returned {len(results)} results for "
                    f"{len(items)} items")
        except Exception as exc:
            for _, future, _ in batch:
                future.set_exception(exc)
            return
        finally:
            if self.on_batch is not None:
                self.on_batch(len(items))
        for (_, future, _), result in zip(batch, results):
            future.set_result(result)

    def flush(self) -> int:
        """Run one batch now (up to ``max_batch`` items); returns its size."""
        with self._cond:
            batch = self._take_batch_locked()
        self._run_batch(batch)
        return len(batch)

    def maybe_flush(self, now: Optional[float] = None) -> int:
        """Flush only if a trigger condition holds; returns items flushed.

        Triggers: queue reached ``max_batch``, or the oldest queued item
        has waited at least ``max_wait_s`` as of ``now``.
        """
        now = self.clock() if now is None else now
        with self._cond:
            if not self._queue:
                return 0
            full = len(self._queue) >= self.max_batch
            expired = now - self._queue[0][2] >= self.max_wait_s
            if not (full or expired):
                return 0
            batch = self._take_batch_locked()
        self._run_batch(batch)
        return len(batch)

    def drain(self) -> int:
        """Flush repeatedly until the queue is empty; returns items flushed."""
        total = 0
        while True:
            n = self.flush()
            if n == 0:
                return total
            total += n

    # -- threaded mode ---------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._running:
            return self
        self._running = True
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="micro-batcher", daemon=True)
        self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        if drain:
            self.drain()

    @property
    def running(self) -> bool:
        return self._running

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._queue:
                    self._cond.wait()
                if not self._running and not self._queue:
                    return
                # Wait out the batching window unless the batch is full.
                while self._running and len(self._queue) < self.max_batch:
                    oldest = self._queue[0][2]
                    remaining = self.max_wait_s - (self.clock() - oldest)
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                    if not self._queue:
                        break
                batch = self._take_batch_locked()
            self._run_batch(batch)
