"""Deprecated location: the metrics types moved to ``repro.obs.metrics``.

This module re-exports :class:`Counter`, :class:`Histogram` and
:class:`MetricsRegistry` unchanged so existing imports — and the
serving snapshot JSON schema they produce — keep working, but importing
it emits a :class:`DeprecationWarning`.  New code should import from
``repro.obs`` (or ``repro.obs.metrics``) directly.
"""

from __future__ import annotations

import warnings

from ..obs.metrics import Counter, Histogram, MetricsRegistry

warnings.warn(
    "repro.serving.metrics has moved to repro.obs.metrics; this "
    "re-export will be removed in a future release",
    DeprecationWarning, stacklevel=2)

__all__ = ["Counter", "Histogram", "MetricsRegistry"]
