"""Graceful degradation: a historical-average fallback estimator.

A serving stack must answer even when the model path cannot — the
artifact failed validation, the weights are corrupt, or a prediction
raises at runtime.  The fallback is a TEMP-style neighbour average
(Wang et al., SIGSPATIAL 2016 — the paper's non-learning baseline): it
needs only the historical trip table, cannot fail on any input, and is
exactly what ran in production before learned estimators existed.
Responses served this way are flagged ``degraded`` so callers and
dashboards can tell model answers from fallback answers.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..baselines.temp import TEMPEstimator
from ..datagen.dataset import TaxiDataset
from ..trajectory.model import ODInput, Query, TripRecord


class HistoricalAverageFallback:
    """TEMP-backed estimator answering raw-coordinate queries.

    The band attached to fallback estimates is a fixed wide ratio band
    (default [0.5p, 2p]) — honest about the fact that no calibration
    backs a degraded answer.
    """

    def __init__(self, dataset: TaxiDataset,
                 band_ratios: Tuple[float, float] = (0.5, 2.0)):
        lo, hi = band_ratios
        if not 0.0 < lo <= 1.0 <= hi:
            raise ValueError("band ratios must straddle 1.0")
        self.band_ratios = (float(lo), float(hi))
        self._temp = TEMPEstimator().fit(dataset)

    def estimate_seconds(self, queries: Sequence[Query]) -> np.ndarray:
        """Point estimates (seconds) for queries (:class:`Query` objects
        or legacy ``(origin, destination, t)`` triples)."""
        trips = [TripRecord(od=ODInput(origin_xy=tuple(o),
                                       destination_xy=tuple(d),
                                       depart_time=float(t)),
                            travel_time=1.0)   # dummy; TEMP reads only od
                 for o, d, t in queries]
        return self._temp.predict(trips)

    def bands(self, seconds: np.ndarray
              ) -> List[Tuple[float, float]]:
        lo, hi = self.band_ratios
        return [(float(s * lo), float(s * hi)) for s in seconds]
