"""Production-style serving stack for trained DeepOD models.

The paper's deployment story (Algorithm 1, Table 5) is that online
estimation runs only M_O and M_E, cheaply, per query.  This package is
the operational half of that story:

``artifact``
    Self-contained model bundles (weights + config + calibration +
    dataset fingerprint) that round-trip to a ready predictor.
``batcher``
    Micro-batching of single queries into vectorised model calls.
``cache``
    LRU caches for map matches and speed-matrix slices.
``fallback``
    TEMP-style historical-average degradation when the model path fails.
``route_baseline``
    Tier 1 of the degradation ladder: shortest path × current cell
    speeds (taxisim's ``predict_trip_duration`` shape), live-traffic
    aware once ``repro.streaming`` feeds slices in.
``metrics``
    Deprecated re-export of ``repro.obs.metrics`` (counters and latency
    histograms with a JSON snapshot now live in the shared
    observability layer; ``Counter``/``Histogram``/``MetricsRegistry``
    remain importable from here unchanged).
``service`` / ``server``
    The wired :class:`TravelTimeService` plus stdlib HTTP / JSON-lines
    front-ends (``python -m repro.cli serve``).
``errors``
    Capacity-error types (``SaturatedError`` → HTTP 503) shared by the
    service, the cluster and the front-ends.
``cluster``
    Sharded multi-process serving (:class:`ServingCluster`): forked
    copy-on-write workers, cross-connection micro-batching, hot model
    swap off the promotion gate's ``current`` symlink, and the
    load-test harness behind ``cli loadtest``.
"""

from .artifact import (
    ArtifactError, load_artifact, read_manifest, save_artifact,
    validate_artifact,
)
from .batcher import MicroBatcher
from .cache import LRUCache, ODMatchCache, SpeedSliceCache
from ..obs.metrics import Counter, Histogram, MetricsRegistry
from ..trajectory.model import Query
from .errors import SaturatedError, ServiceUnavailable, WorkerUnavailableError
from .fallback import HistoricalAverageFallback
from .route_baseline import RouteTimeBaseline
from .server import ServingHTTPServer, parse_query, run_jsonl_loop, serve_http
from .service import ServiceConfig, ServingResponse, TravelTimeService
from .cluster import ClusterConfig, ServingCluster

__all__ = [
    "ArtifactError", "load_artifact", "read_manifest", "save_artifact",
    "validate_artifact",
    "MicroBatcher",
    "LRUCache", "ODMatchCache", "SpeedSliceCache",
    "HistoricalAverageFallback", "RouteTimeBaseline",
    "SaturatedError", "ServiceUnavailable", "WorkerUnavailableError",
    "Counter", "Histogram", "MetricsRegistry", "Query",
    "ServingHTTPServer", "parse_query", "run_jsonl_loop", "serve_http",
    "ServiceConfig", "ServingResponse", "TravelTimeService",
    "ClusterConfig", "ServingCluster",
]
