"""Self-contained model artifacts: save/load a ready-to-query predictor.

The paper's deployment split (Algorithm 1) is offline training vs online
estimation: at prediction time only M_O and M_E run.  An *artifact* is
everything the online side needs, bundled in one directory::

    <artifact>/
        manifest.json      schema version, dataset fingerprint, weights
                           checksum, model size
        config.json        the exact DeepODConfig the model was built with
        weights.npz        full state dict (parameters + buffers, incl.
                           target-normalisation stats and BatchNorm state)
        calibration.json   the predictor's conformal band quantiles

``load_artifact`` round-trips to a working :class:`TravelTimePredictor`
with bitwise-identical predictions and *no retraining and no
recalibration*: the dataset is regenerated from its recorded preset
parameters (synthetic data is deterministic), the model is rebuilt with
cheap random initialisation (pre-trained embeddings would be overwritten
anyway) and the saved state restored on top.

Validation is fail-closed: a missing file, checksum mismatch, schema
bump or dataset-fingerprint drift raises :class:`ArtifactError` — the
service layer catches that and degrades to the historical fallback
rather than serving a silently wrong model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.config import DeepODConfig
from ..core.predictor import TravelTimePredictor
from ..core.trainer import DeepODTrainer, build_deepod
from ..datagen.dataset import BuildInfo, TaxiDataset, dataset_fingerprint
from ..datagen.pipeline import DatasetSpec, build

SCHEMA_VERSION = 1

MANIFEST_FILE = "manifest.json"
CONFIG_FILE = "config.json"
WEIGHTS_FILE = "weights.npz"
CALIBRATION_FILE = "calibration.json"


class ArtifactError(Exception):
    """The artifact is missing, malformed, or fails validation."""


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_json(path: str, payload: Dict) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _read_json(path: str) -> Dict:
    if not os.path.exists(path):
        raise ArtifactError(f"missing artifact file: {path}")
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"unreadable artifact file {path}: {exc}")


# ---------------------------------------------------------------------------
def save_artifact(directory: str, predictor: TravelTimePredictor,
                  extra_manifest: Optional[Dict] = None) -> str:
    """Persist a predictor as a self-contained artifact directory.

    ``extra_manifest`` is recorded verbatim under the manifest's
    ``provenance`` key — the experiment pipeline uses it to stamp
    artifacts with the run id and config hash that produced them, so a
    deployed model is always traceable back to its registry entry.

    Returns the artifact directory path.
    """
    os.makedirs(directory, exist_ok=True)
    model = predictor.model
    dataset = predictor.dataset

    config_payload = dataclasses.asdict(model.config)
    _write_json(os.path.join(directory, CONFIG_FILE), config_payload)

    weights_path = os.path.join(directory, WEIGHTS_FILE)
    np.savez_compressed(weights_path, **model.state_dict())

    lo, hi = predictor.quantiles
    _write_json(os.path.join(directory, CALIBRATION_FILE), {
        "coverage": predictor.coverage,
        "lo_quantile": lo,
        "hi_quantile": hi,
    })

    manifest = {
        "schema_version": SCHEMA_VERSION,
        "model": "DeepOD",
        "weights_sha256": _sha256_file(weights_path),
        "model_size_bytes": model.size_bytes(),
        "num_parameters": model.num_parameters(),
        "dataset": {
            "name": dataset.name,
            "fingerprint": dataset_fingerprint(dataset),
            "build_params": dataset.build_params.to_dict()
            if dataset.build_params is not None else None,
        },
    }
    if extra_manifest:
        manifest["provenance"] = dict(extra_manifest)
    _write_json(os.path.join(directory, MANIFEST_FILE), manifest)
    return directory


# ---------------------------------------------------------------------------
def read_manifest(directory: str) -> Dict:
    """Load and schema-check an artifact manifest."""
    manifest = _read_json(os.path.join(directory, MANIFEST_FILE))
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported artifact schema {version!r} "
            f"(this build reads {SCHEMA_VERSION})")
    if manifest.get("model") != "DeepOD":
        raise ArtifactError(
            f"unsupported model type {manifest.get('model')!r}")
    return manifest


def validate_artifact(directory: str) -> Dict:
    """Structural + checksum validation; returns the manifest.

    Does not touch the dataset — full fingerprint validation happens in
    :func:`load_artifact` once the dataset is available.
    """
    if not os.path.isdir(directory):
        raise ArtifactError(f"artifact directory not found: {directory}")
    manifest = read_manifest(directory)
    weights_path = os.path.join(directory, WEIGHTS_FILE)
    if not os.path.exists(weights_path):
        raise ArtifactError(f"missing artifact file: {weights_path}")
    actual = _sha256_file(weights_path)
    expected = manifest.get("weights_sha256")
    if actual != expected:
        raise ArtifactError(
            f"weights checksum mismatch: manifest says {expected}, "
            f"file hashes to {actual}")
    # These must parse even though their contents are consumed later.
    _read_json(os.path.join(directory, CONFIG_FILE))
    _read_json(os.path.join(directory, CALIBRATION_FILE))
    return manifest


def _load_config(directory: str) -> DeepODConfig:
    payload = _read_json(os.path.join(directory, CONFIG_FILE))
    known = {f.name for f in dataclasses.fields(DeepODConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ArtifactError(
            f"config.json has unknown fields {sorted(unknown)}")
    try:
        return DeepODConfig(**payload)
    except (TypeError, ValueError) as exc:
        raise ArtifactError(f"invalid config.json: {exc}")


def _rebuild_dataset(manifest: Dict) -> TaxiDataset:
    info = manifest.get("dataset") or {}
    params = info.get("build_params")
    if not params:
        raise ArtifactError(
            "artifact records no dataset build parameters; pass the "
            "training dataset to load_artifact(dataset=...)")
    try:
        spec = DatasetSpec.from_build_info(BuildInfo.from_dict(params))
        return build(spec)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"cannot regenerate dataset: {exc}")


def load_artifact(directory: str,
                  dataset: Optional[TaxiDataset] = None
                  ) -> TravelTimePredictor:
    """Restore a ready-to-query predictor from an artifact directory.

    ``dataset`` skips regeneration when the caller already holds the
    training dataset (tests, long-lived processes); it is fingerprint-
    checked either way.
    """
    manifest = validate_artifact(directory)
    config = _load_config(directory)

    if dataset is None:
        dataset = _rebuild_dataset(manifest)
    expected_fp = (manifest.get("dataset") or {}).get("fingerprint")
    actual_fp = dataset_fingerprint(dataset)
    if expected_fp != actual_fp:
        raise ArtifactError(
            f"dataset fingerprint mismatch: model was trained on "
            f"{expected_fp}, serving dataset is {actual_fp}")

    # Pre-trained embedding initialisation is pure wasted work here —
    # every weight is overwritten by the saved state — so build with the
    # 'onehot' (random-init) variant.  The artifact's config is attached
    # to the model unchanged afterwards.
    build_config = config.with_overrides(init_road_embedding="onehot",
                                         init_slot_embedding="onehot")
    model = build_deepod(dataset, build_config)
    model.config = config
    trainer = DeepODTrainer(model, dataset, eval_every=0)

    weights_path = os.path.join(directory, WEIGHTS_FILE)
    try:
        with np.load(weights_path) as data:
            state = {key: data[key] for key in data.files}
        model.load_state_dict(state)
    except (OSError, KeyError, ValueError) as exc:
        raise ArtifactError(f"cannot restore weights: {exc}")

    calibration = _read_json(os.path.join(directory, CALIBRATION_FILE))
    try:
        coverage = float(calibration["coverage"])
        quantiles: Tuple[float, float] = (
            float(calibration["lo_quantile"]),
            float(calibration["hi_quantile"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"invalid calibration.json: {exc}")
    return TravelTimePredictor(trainer, coverage=coverage,
                               quantiles=quantiles)
