"""Stdlib-only front-ends for :class:`TravelTimeService`.

Two transports, zero dependencies beyond the standard library:

* **HTTP** (``serve_http``) — a ``ThreadingHTTPServer`` exposing

  - ``POST /estimate``        one query  ``{"origin": [x, y],
    "destination": [x, y], "depart_time": t}``
  - ``POST /estimate_batch``  ``{"queries": [query, ...]}``
  - ``GET  /metrics``         the service's JSON metrics snapshot
  - ``GET  /healthz``         liveness + degraded flag (plus per-shard
    detail when the backend is a :class:`ServingCluster`)

  Single-query POSTs go through the micro-batcher, so concurrent
  request threads coalesce into vectorised model calls.  The backend is
  duck-typed: anything exposing ``answer`` / ``query_batch`` /
  ``metrics_snapshot`` / ``degraded`` serves — the single-process
  :class:`TravelTimeService` and the sharded
  :class:`~repro.serving.cluster.ServingCluster` interchangeably.

  Capacity errors are first-class: a saturated admission queue
  (:class:`SaturatedError`) or an artifact reload caught mid-swap
  (:class:`ArtifactError`) answers **503** with a JSON error body and a
  ``Retry-After`` header instead of a socket reset, so callers can
  back off and retry rather than treating shed load as an outage.

* **JSON lines** (``run_jsonl_loop``) — one query object per input
  line, one response object per output line; ``{"cmd": "metrics"}``
  returns the snapshot.  This is the pipe-friendly mode used by
  ``python -m repro.cli serve --stdin`` and by the end-to-end tests.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Optional, Tuple

from ..trajectory.model import Query
from .artifact import ArtifactError
from .errors import ServiceUnavailable
from .service import TravelTimeService


def parse_query(payload: dict) -> Query:
    """Validate a JSON query object into a typed :class:`Query`.

    The returned object iterates as the legacy ``((ox, oy), (dx, dy),
    t)`` triple, so ``service.query(*parse_query(...))`` keeps working.
    """
    try:
        origin = payload["origin"]
        destination = payload["destination"]
        depart = payload["depart_time"]
    except (KeyError, TypeError):
        raise ValueError(
            "query must have 'origin', 'destination', 'depart_time'")
    for name, point in (("origin", origin), ("destination", destination)):
        if not (isinstance(point, (list, tuple)) and len(point) == 2):
            raise ValueError(f"{name} must be a [x, y] pair")
    t = float(depart)
    if t < 0:
        raise ValueError("depart_time must be non-negative")
    return Query(origin_xy=(float(origin[0]), float(origin[1])),
                 destination_xy=(float(destination[0]),
                                 float(destination[1])),
                 depart_time=t)


# ---------------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to ``server.service``."""

    server_version = "repro-serving/1.0"

    @property
    def service(self) -> TravelTimeService:
        return self.server.service    # type: ignore[attr-defined]

    # -- plumbing --------------------------------------------------------
    def _send_json(self, status: int, payload: dict,
                   retry_after_s: Optional[float] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            # Retry-After is integer seconds; round up so "0.004s" does
            # not tell clients to hammer back immediately.
            self.send_header("Retry-After",
                             str(max(1, int(-(-retry_after_s // 1)))))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            raise ValueError("empty request body")
        return json.loads(self.rfile.read(length))

    def log_message(self, fmt, *args):   # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- routes ----------------------------------------------------------
    def do_GET(self):
        if self.path == "/healthz":
            health = {"status": "ok", "degraded": self.service.degraded}
            snapshot = getattr(self.service, "health_snapshot", None)
            if snapshot is not None:    # cluster backend: shard detail
                health.update(snapshot())
                if health["degraded"]:
                    health["status"] = "degraded"
            self._send_json(200, health)
        elif self.path == "/metrics":
            self._send_json(200, self.service.metrics_snapshot())
        else:
            self._send_json(404, {"error": f"no route {self.path}"})

    def do_POST(self):
        try:
            payload = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad JSON body: {exc}"})
            return
        try:
            if self.path == "/estimate":
                query = parse_query(payload)
                response = self.service.answer(query)
                self._send_json(200, response.to_dict())
            elif self.path == "/estimate_batch":
                queries = [parse_query(q)
                           for q in payload.get("queries", [])]
                responses = self.service.query_batch(queries)
                self._send_json(200, {"responses": [r.to_dict()
                                                    for r in responses]})
            else:
                self._send_json(404, {"error": f"no route {self.path}"})
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceUnavailable as exc:
            self._send_json(503, {"error": str(exc), "saturated": True},
                            retry_after_s=exc.retry_after_s)
        except ArtifactError as exc:
            self._send_json(503, {"error": f"artifact mid-swap: {exc}",
                                  "saturated": False},
                            retry_after_s=0.5)
        except Exception as exc:    # never kill the connection thread
            self._send_json(500, {"error": f"internal error: {exc}"})


class ServingHTTPServer(ThreadingHTTPServer):
    """HTTP server owning a :class:`TravelTimeService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: TravelTimeService, verbose: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose


def serve_http(service: TravelTimeService, host: str = "127.0.0.1",
               port: int = 8321, verbose: bool = False) -> None:
    """Run the HTTP front-end until interrupted (blocking)."""
    service.start()
    server = ServingHTTPServer((host, port), service, verbose=verbose)
    try:
        print(f"serving on http://{host}:{server.server_address[1]} "
              f"(degraded={service.degraded})")
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()


# ---------------------------------------------------------------------------
def run_jsonl_loop(service: TravelTimeService, in_stream: IO[str],
                   out_stream: IO[str],
                   max_queries: Optional[int] = None) -> int:
    """Answer JSON-lines queries from ``in_stream`` onto ``out_stream``.

    Returns the number of queries answered.  Malformed lines produce an
    ``{"error": ...}`` line instead of aborting the loop.
    """
    answered = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            print(json.dumps({"error": f"bad JSON: {exc}"}),
                  file=out_stream, flush=True)
            continue
        if isinstance(payload, dict) and payload.get("cmd") == "metrics":
            print(json.dumps(service.metrics_snapshot()),
                  file=out_stream, flush=True)
            continue
        try:
            query = parse_query(payload)
            response = service.query(query)
        except ValueError as exc:
            print(json.dumps({"error": str(exc)}),
                  file=out_stream, flush=True)
            continue
        print(json.dumps(response.to_dict()), file=out_stream, flush=True)
        answered += 1
        if max_queries is not None and answered >= max_queries:
            break
    return answered
