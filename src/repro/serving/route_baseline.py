"""Shortest-path × live-speed baseline: the middle serving tier.

The first rung of the baseline ladder (ROADMAP item 5), shaped after
taxisim's ``predict_trip_duration``: route the OD pair over the road
network with per-edge costs ``length / cell_speed``, where the cell
speed comes from the speed-matrix slice in force at the departure time.
With a :class:`~repro.datagen.speed_matrix.LiveSpeedStore` behind it the
estimate tracks *live* traffic, which makes it a far better degraded
answer than the time-bucketed historical average (TEMP): the serving
fallback chain is model (tier 0) → route baseline (tier 1) → TEMP
(tier 2).

No learning happens here — the whole tier is one Dijkstra per query
over cached per-edge cell indices, so it stays available whenever the
model path is down.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..datagen.speed_matrix import edge_cell_indices
from ..roadnet.graph import RoadNetwork
from ..roadnet.shortest_path import dijkstra
from ..trajectory.model import ODInput

# A floor on per-cell speeds (m/s): a cell observed only while gridlocked
# must still yield finite edge costs.
MIN_CELL_SPEED = 0.5


class RouteTimeBaseline:
    """Travel-time estimates from shortest paths under current speeds.

    Parameters
    ----------
    net:
        The road network shared with the rest of the serving stack.
    store_provider:
        Zero-argument callable returning the speed store to read slices
        from.  A callable (not a bound store) so the serving layer can
        swap in a live store mid-flight without rebuilding the baseline.
    """

    def __init__(self, net: RoadNetwork, store_provider: Callable,
                 min_cell_speed: float = MIN_CELL_SPEED):
        if min_cell_speed <= 0:
            raise ValueError("min_cell_speed must be positive")
        self.net = net
        self._store = store_provider
        self.min_cell_speed = min_cell_speed
        store = store_provider()
        self._rows, self._cols = edge_cell_indices(net, store)
        self._lengths = np.array([net.edge(e).length
                                  for e in range(net.num_edges)])

    # ------------------------------------------------------------------
    def _edge_seconds(self, t: float) -> np.ndarray:
        """Per-edge traversal seconds under the slice in force at ``t``."""
        matrix = self._store().matrix_before(t)
        speeds = np.maximum(matrix[self._rows, self._cols],
                            self.min_cell_speed)
        return self._lengths / speeds

    def estimate_od(self, od: ODInput,
                    edge_seconds: Optional[np.ndarray] = None) -> float:
        """Seconds for one matched OD input (raises on unroutable pairs,
        letting the caller fall through to the next tier)."""
        if not od.is_matched:
            raise ValueError("route baseline needs matched edge ids")
        costs = (self._edge_seconds(od.depart_time)
                 if edge_seconds is None else edge_seconds)
        o_edge, d_edge = od.origin_edge, od.destination_edge
        if o_edge == d_edge:
            span = abs(od.ratio_end - od.ratio_start)
            return float(max(span * costs[o_edge], 1e-3))
        o, d = self.net.edge(o_edge), self.net.edge(d_edge)
        seconds = (1.0 - od.ratio_start) * costs[o_edge]
        if o.end != d.start:
            path, path_seconds = dijkstra(
                self.net, o.end, d.start,
                edge_cost=lambda eid: float(costs[eid]))
            seconds += path_seconds
        seconds += od.ratio_end * costs[d_edge]
        return float(max(seconds, 1e-3))

    def estimate_from_ods(self, ods: Sequence[ODInput]) -> np.ndarray:
        """Vector of seconds for a batch; the per-period edge-cost table
        is shared across queries departing in the same slice."""
        if not len(ods):
            return np.array([])
        store = self._store()
        by_period = {}
        out = np.empty(len(ods))
        for i, od in enumerate(ods):
            period = store.period_before(od.depart_time)
            if period not in by_period:
                by_period[period] = self._edge_seconds(od.depart_time)
            out[i] = self.estimate_od(od, edge_seconds=by_period[period])
        return out
