"""Serving-layer error types shared by the service, cluster and HTTP
front-end.

A production front door distinguishes *caller* errors (bad query →
HTTP 400) from *capacity* errors (the stack is up but cannot take more
work right now → HTTP 503 with a Retry-After hint).  The second family
lives here so every layer — single-process :class:`TravelTimeService`,
the sharded :class:`~repro.serving.cluster.ServingCluster`, and the
stdlib HTTP server — raises and handles the same types.
"""

from __future__ import annotations


class ServiceUnavailable(Exception):
    """The serving stack is temporarily unable to answer (HTTP 503).

    ``retry_after_s`` is a hint for the ``Retry-After`` header: how long
    a well-behaved caller should back off before retrying.
    """

    def __init__(self, message: str, retry_after_s: float = 0.05):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class SaturatedError(ServiceUnavailable):
    """The admission queue is full; shedding load instead of buffering.

    Raised by ``submit`` when the pending-query bound is reached — the
    alternative (unbounded queueing) turns overload into unbounded
    latency for every caller instead of fast 503s for the excess.
    """


class WorkerUnavailableError(ServiceUnavailable):
    """A shard's worker process cannot answer (crashed and not yet
    restarted, or unresponsive past the dispatch timeout)."""
