"""Serving caches with hit/miss accounting.

Two query-path costs dominate a served OD estimate: snapping the raw
coordinates onto road segments (a spatial-index walk per endpoint) and
assembling the "current traffic condition" speed matrix (Section 4.5 —
one matrix per Δt period, shared by every query departing in that
period).  Both are highly repetitive in production traffic — popular
pickup points recur, and all queries inside one 5-minute period need the
same matrix — so both sit behind LRU caches here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from ..datagen.speed_matrix import SpeedMatrixStore
from ..roadnet.spatial_index import SpatialIndex

_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Thread-safe; counts hits and misses so the service can export cache
    effectiveness in its metrics snapshot.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default=None):
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute):
        """Cached value for ``key``, calling ``compute()`` on a miss."""
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value)
        return value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {"size": len(self._data), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class SpeedSliceCache:
    """Normalised speed-matrix slices keyed by (period, version).

    ``SpeedMatrixStore.normalized_matrix_before`` recomputes the clip and
    scale on every call; all queries departing inside the same Δt period
    share one slice, so the natural cache key is the period index.  A
    bare period key is only safe while the store is immutable — once
    ``repro.streaming`` pushes live slices, a period's matrix can change
    under the cache, and a key that never changes would serve the stale
    pre-update slice forever.  Keys therefore carry a per-period version
    (plus a store-wide generation bumped on :meth:`swap_store`): an
    :meth:`invalidate` makes the old entry unreachable — it ages out of
    the LRU — and the next read recomputes from the live store.
    """

    def __init__(self, store: SpeedMatrixStore, capacity: int = 64):
        self._store = store
        self._lru = LRUCache(capacity)
        self._lock = threading.Lock()
        self._generation = 0
        self._versions: Dict[int, int] = {}
        self.invalidations = 0

    @property
    def store(self) -> SpeedMatrixStore:
        return self._store

    def period_of(self, t: float) -> int:
        if t < 0:
            raise ValueError("time must be non-negative")
        p = int(t // self._store.config.period_seconds) - 1
        return int(np.clip(p, 0, self._store.periods - 1))

    def _key(self, period: int) -> Tuple[int, int, int]:
        return (period, self._generation, self._versions.get(period, 0))

    def normalized_matrix_before(self, t: float) -> np.ndarray:
        period = self.period_of(t)
        with self._lock:
            key = self._key(period)
        return self._lru.get_or_compute(
            key, lambda: self._store.normalized_matrix_before(t))

    def invalidate(self, periods: Optional[Sequence[int]] = None) -> int:
        """Version-bump cached slices: the named periods, or every
        period (``None``).  Returns how many invalidation events were
        recorded (one per named period; one for a full flush)."""
        with self._lock:
            if periods is None:
                self._generation += 1
                self._versions.clear()
                self.invalidations += 1
                return 1
            touched = [int(p) for p in periods]
            for period in touched:
                self._versions[period] = self._versions.get(period, 0) + 1
            self.invalidations += len(touched)
            return len(touched)

    def swap_store(self, store: SpeedMatrixStore) -> None:
        """Point the cache at a new store; every cached slice dies."""
        with self._lock:
            self._store = store
            self._generation += 1
            self._versions.clear()
            self.invalidations += 1

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def stats(self) -> Dict[str, float]:
        stats = self._lru.stats()
        stats["invalidations"] = self.invalidations
        return stats


class ODMatchCache:
    """Nearest-edge map matches keyed per endpoint coordinate.

    Caching per *endpoint* rather than per OD pair doubles reuse: a
    popular pickup point hits the cache no matter where the trip goes.
    Keys are exact coordinates by default (lossless); an optional
    ``quantize_metres`` snaps keys to a grid, trading a bounded match
    perturbation for a much higher hit rate under GPS jitter.
    """

    def __init__(self, index: SpatialIndex, capacity: int = 4096,
                 quantize_metres: float = 0.0):
        if quantize_metres < 0:
            raise ValueError("quantize_metres must be >= 0")
        self.index = index
        self.quantize_metres = quantize_metres
        self._lru = LRUCache(capacity)

    def _key(self, x: float, y: float) -> Tuple[float, float]:
        q = self.quantize_metres
        if q > 0:
            return (round(x / q) * q, round(y / q) * q)
        return (float(x), float(y))

    def nearest_edge(self, x: float, y: float) -> Tuple[int, float, float]:
        """(edge_id, distance, ratio) as in ``SpatialIndex.nearest_edge``."""
        key = self._key(x, y)
        return self._lru.get_or_compute(
            key, lambda: self.index.nearest_edge(key[0], key[1]))

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def stats(self) -> Dict[str, float]:
        return self._lru.stats()
