"""TravelTimeService: the operable serving stack around a predictor.

Wires the pieces of ``repro.serving`` into one query-facing object:

* cached map matching (``ODMatchCache``) and cached speed-matrix slices
  (``SpeedSliceCache``) in front of the model path;
* a :class:`MicroBatcher` coalescing concurrent single queries into
  vectorised ``estimate_from_ods`` calls;
* graceful degradation to :class:`HistoricalAverageFallback` when the
  model path raises or no valid model artifact is available;
* a :class:`MetricsRegistry` tracking traffic, latency percentiles,
  batch sizes and cache hit rates.

Per the paper's prediction-time design, the model path exercises only
M_O and M_E — no trajectory ever enters a served query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.predictor import TravelTimePredictor, normalize_depart_time
from ..datagen.dataset import TaxiDataset
from ..datagen.speed_matrix import LiveSpeedStore
from ..obs.instrument import Instrumented
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..trajectory.model import ODInput, Query
from .batcher import MicroBatcher
from .cache import ODMatchCache, SpeedSliceCache
from .errors import SaturatedError
from .fallback import HistoricalAverageFallback
from .route_baseline import RouteTimeBaseline


@dataclass
class ServiceConfig:
    """Operational knobs of the serving stack.

    ``max_pending`` bounds the micro-batcher admission queue: once that
    many queries are waiting, :meth:`TravelTimeService.submit` sheds
    load with :class:`~repro.serving.errors.SaturatedError` (the HTTP
    front-end turns it into a 503) instead of buffering without bound.
    ``0`` keeps the queue unbounded.
    """

    max_batch: int = 128
    max_wait_s: float = 0.005
    max_pending: int = 0
    od_cache_size: int = 4096
    slice_cache_size: int = 64
    match_quantize_metres: float = 0.0
    fallback_band_ratios: Tuple[float, float] = (0.5, 2.0)
    # Tier 1 of the degradation ladder: when the model path raises, try
    # a shortest-path × current-speed estimate before the TEMP average.
    route_fallback: bool = True

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.max_pending < 0:
            raise ValueError("max_pending must be >= 0")


@dataclass
class ServingResponse:
    """One answered query, with provenance.

    ``degraded_tier`` names the rung of the degradation ladder that
    produced the answer: 0 = model, 1 = shortest-path × live-speed
    baseline, 2 = TEMP historical average.  ``degraded`` stays the
    boolean summary (tier > 0) the existing clients key on.
    """

    seconds: float
    lower: float
    upper: float
    origin_edge: int
    destination_edge: int
    degraded: bool
    source: str                 # "model" | "route" | "fallback"
    degraded_tier: int = 0      # 0 model | 1 route baseline | 2 TEMP

    def to_dict(self) -> Dict[str, object]:
        return {
            "seconds": round(self.seconds, 3),
            "lower": round(self.lower, 3),
            "upper": round(self.upper, 3),
            "origin_edge": self.origin_edge,
            "destination_edge": self.destination_edge,
            "degraded": self.degraded,
            "source": self.source,
            "degraded_tier": self.degraded_tier,
        }


class TravelTimeService(Instrumented):
    """Production-style front door over a (possibly absent) predictor.

    Parameters
    ----------
    predictor:
        A ready :class:`TravelTimePredictor`, typically from
        ``repro.serving.artifact.load_artifact``.  ``None`` starts the
        service in permanently degraded (fallback-only) mode.
    dataset:
        Required only when ``predictor`` is ``None`` (the fallback needs
        the historical trip table); otherwise taken from the predictor.
    tracer:
        Optional :class:`~repro.obs.Tracer`; each answered batch opens
        a ``serve.request`` span with per-phase children (``serve.match``
        / ``serve.speed_slices`` / ``serve.predict`` or
        ``serve.fallback``) — the paper's per-query cost breakdown
        (Table 5).  Batches answered on the micro-batcher worker thread
        trace as that thread's roots.
    """

    def __init__(self, predictor: Optional[TravelTimePredictor] = None,
                 dataset: Optional[TaxiDataset] = None,
                 config: Optional[ServiceConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if predictor is None and dataset is None:
            raise ValueError("need a predictor or a dataset")
        self.tracer = tracer
        self.config = config or ServiceConfig()
        self.predictor = predictor
        self.dataset = dataset if dataset is not None else predictor.dataset
        self.metrics = metrics or MetricsRegistry()
        self.fallback = HistoricalAverageFallback(
            self.dataset, band_ratios=self.config.fallback_band_ratios)

        # Live traffic state: ``apply_live_speeds`` lazily wraps the
        # training-time store in a LiveSpeedStore overlay; until then
        # every consumer reads the static store directly.
        self._live_store: Optional[LiveSpeedStore] = None

        self.od_cache: Optional[ODMatchCache] = None
        self.slice_cache: Optional[SpeedSliceCache] = None
        self.route_baseline: Optional[RouteTimeBaseline] = None
        if predictor is not None:
            self.od_cache = ODMatchCache(
                predictor.index, capacity=self.config.od_cache_size,
                quantize_metres=self.config.match_quantize_metres)
            self.metrics.register_gauge("od_match_cache",
                                        self.od_cache.stats)
            if predictor.model.config.use_external_features:
                self.slice_cache = SpeedSliceCache(
                    self.dataset.speed_store,
                    capacity=self.config.slice_cache_size)
                self.metrics.register_gauge("speed_slice_cache",
                                            self.slice_cache.stats)
            if self.config.route_fallback:
                self.route_baseline = RouteTimeBaseline(
                    self.dataset.net, lambda: self.speed_store)
        # Standard-schema cache-effectiveness gauges (dashboards key on
        # these names; the full stats dicts above stay for debugging).
        # A cache that does not exist on this service reads 0.0 rather
        # than vanishing from the snapshot.
        self.metrics.register_gauge(
            "serve.cache.od.hit_rate",
            lambda: self.od_cache.hit_rate if self.od_cache else 0.0)
        self.metrics.register_gauge(
            "serve.cache.speed.hit_rate",
            lambda: self.slice_cache.hit_rate if self.slice_cache else 0.0)

        self.batcher = MicroBatcher(
            self._answer_batch,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
            on_batch=lambda n: self.metrics.histogram("batch_size")
                                   .observe(n))

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "TravelTimeService":
        """Start the micro-batcher worker (needed for ``submit``)."""
        self.batcher.start()
        return self

    def stop(self) -> None:
        self.batcher.stop()

    @property
    def degraded(self) -> bool:
        """True when no model path exists (fallback-only service)."""
        return self.predictor is None

    @property
    def speed_store(self):
        """The speed store queries read from: the live overlay once
        streaming updates have arrived, the training store before."""
        return (self._live_store if self._live_store is not None
                else self.dataset.speed_store)

    # -- live traffic state ----------------------------------------------
    def apply_live_speeds(self, slices: Dict[int, np.ndarray]) -> int:
        """Overlay freshly estimated speed-matrix slices.

        ``slices`` maps period index → raw mean-speed matrix (m/s, grid
        shaped).  The first call swaps the slice cache and the route
        baseline onto a :class:`LiveSpeedStore` overlay; every call
        version-bumps the touched periods' cache keys so no stale slice
        survives (counted in ``serve.cache.speed.invalidations``).
        Returns the number of slices applied.
        """
        if not slices:
            return 0
        if self._live_store is None:
            self._live_store = LiveSpeedStore(self.dataset.speed_store)
            if self.slice_cache is not None:
                self.slice_cache.swap_store(self._live_store)
                self.metrics.counter(
                    "serve.cache.speed.invalidations").inc()
        for period, matrix in slices.items():
            self._live_store.update_slice(int(period), matrix)
        if self.slice_cache is not None:
            invalidated = self.slice_cache.invalidate(
                [int(p) for p in slices])
            self.metrics.counter(
                "serve.cache.speed.invalidations").inc(invalidated)
        self.metrics.counter("serve.speed_updates").inc(len(slices))
        return len(slices)

    def swap_predictor(self, predictor: TravelTimePredictor) -> None:
        """Replace the model in place (single-process hot swap).

        The cluster's workers reload from the promotion gate's symlink
        themselves; a bare :class:`TravelTimeService` is swapped by its
        owner — the streaming controller does this after a promotion.
        Caches are rebound to the new predictor's index; applied live
        speed slices survive the swap.
        """
        if predictor is None:
            raise ValueError("swap_predictor needs a predictor")
        self.predictor = predictor
        self.od_cache = ODMatchCache(
            predictor.index, capacity=self.config.od_cache_size,
            quantize_metres=self.config.match_quantize_metres)
        if predictor.model.config.use_external_features:
            if self.slice_cache is None:
                self.slice_cache = SpeedSliceCache(
                    self.speed_store,
                    capacity=self.config.slice_cache_size)
        else:
            self.slice_cache = None
        if self.config.route_fallback and self.route_baseline is None:
            self.route_baseline = RouteTimeBaseline(
                self.dataset.net, lambda: self.speed_store)
        self.metrics.counter("serve.model_swaps").inc()

    # -- query paths -----------------------------------------------------
    def query(self, query, destination_xy: Optional[Tuple[float, float]]
              = None, depart_time: Optional[float] = None
              ) -> ServingResponse:
        """Answer one query synchronously (no batching).

        Accepts a :class:`~repro.trajectory.model.Query` (or legacy
        3-tuple) as the sole argument, or the spread legacy form
        ``query(origin_xy, destination_xy, depart_time)``.
        """
        if destination_xy is not None:
            query = Query(origin_xy=tuple(query),
                          destination_xy=tuple(destination_xy),
                          depart_time=depart_time)
        return self.query_batch([query])[0]

    def query_batch(self, queries: Sequence) -> List[ServingResponse]:
        """Answer many queries (``Query`` objects or legacy triples)
        in one vectorised pass."""
        start = time.perf_counter()
        responses = self._answer_batch(
            [Query.coerce(q) for q in queries])
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        hist = self.metrics.histogram("latency_ms")
        for _ in responses:
            hist.observe(elapsed_ms / max(len(responses), 1))
        return responses

    def submit(self, query, destination_xy: Optional[Tuple[float, float]]
               = None, depart_time: Optional[float] = None):
        """Enqueue one query on the micro-batcher; returns a future.

        The batcher worker must be running (see :meth:`start`); the
        future resolves to a :class:`ServingResponse`.  Accepts the
        same query forms as :meth:`query`.  When the admission queue is
        full (``config.max_pending``), sheds load by raising
        :class:`SaturatedError` instead of queueing.
        """
        if destination_xy is not None:
            query = Query(origin_xy=tuple(query),
                          destination_xy=tuple(destination_xy),
                          depart_time=depart_time)
        limit = self.config.max_pending
        if limit and self.batcher.pending >= limit:
            self.metrics.counter("saturated_rejections").inc()
            raise SaturatedError(
                f"serving queue full ({limit} queries pending)",
                retry_after_s=self.config.max_wait_s * 2)
        enqueued = time.perf_counter()
        future = self.batcher.submit(Query.coerce(query))
        future.add_done_callback(
            lambda f: self.metrics.histogram("latency_ms").observe(
                (time.perf_counter() - enqueued) * 1000.0))
        return future

    def answer(self, query) -> ServingResponse:
        """Answer one query on the best available path: through the
        micro-batcher when its worker is running (so concurrent callers
        coalesce), synchronously otherwise.  This is the front-end entry
        point shared with :class:`~repro.serving.cluster.ServingCluster`.
        """
        if self.batcher.running:
            return self.submit(query).result()
        return self.query(query)

    # -- internals -------------------------------------------------------
    def _answer_batch(self, queries: List[Query]) -> List[ServingResponse]:
        if not queries:
            return []
        queries = [Query.coerce(q) for q in queries]
        self.metrics.counter("queries_total").inc(len(queries))
        with self.tracer.span("serve.request", queries=len(queries)):
            if self.predictor is not None:
                try:
                    responses = self._model_answers(queries)
                    self.metrics.counter("model_answers").inc(len(queries))
                    return responses
                except Exception:
                    self.metrics.counter("model_failures").inc()
                    self.tracer.annotate(model_failed=True)
            if self.route_baseline is not None:
                try:
                    responses = self._route_answers(queries)
                    self.metrics.counter("route_answers").inc(len(queries))
                    return responses
                except Exception:
                    self.metrics.counter("route_failures").inc()
                    self.tracer.annotate(route_failed=True)
            return self._fallback_answers(queries)

    def _match(self, query: Query) -> ODInput:
        depart_time = normalize_depart_time(
            query.depart_time, self.dataset.horizon_seconds)
        cache = self.od_cache
        o_edge, _, o_ratio = cache.nearest_edge(*query.origin_xy)
        d_edge, _, d_ratio = cache.nearest_edge(*query.destination_xy)
        weather = self.dataset.weather.category(depart_time)
        return ODInput(
            origin_xy=query.origin_xy,
            destination_xy=query.destination_xy,
            depart_time=depart_time,
            origin_edge=o_edge, destination_edge=d_edge,
            ratio_start=o_ratio, ratio_end=d_ratio,
            weather=weather)

    def _model_answers(self, queries: List[Query]
                       ) -> List[ServingResponse]:
        with self.tracer.span("serve.match", queries=len(queries)):
            ods = [self._match(q) for q in queries]
        mats = None
        if self.slice_cache is not None:
            with self.tracer.span("serve.speed_slices"):
                mats = np.stack([
                    self.slice_cache.normalized_matrix_before(
                        od.depart_time)
                    for od in ods])
        with self.tracer.span("serve.predict", queries=len(queries)):
            estimates = self.predictor.estimate_from_ods(ods, mats)
        return [ServingResponse(
                    seconds=e.seconds, lower=e.lower, upper=e.upper,
                    origin_edge=e.origin_edge,
                    destination_edge=e.destination_edge,
                    degraded=False, source="model")
                for e in estimates]

    def _route_answers(self, queries: List[Query]
                       ) -> List[ServingResponse]:
        """Tier 1: shortest path × current (possibly live) cell speeds."""
        with self.tracer.span("serve.route", queries=len(queries)):
            ods = [self._match(q) for q in queries]
            seconds = self.route_baseline.estimate_from_ods(ods)
        lo_r, hi_r = self.config.fallback_band_ratios
        return [ServingResponse(
                    seconds=float(s), lower=float(s * lo_r),
                    upper=float(s * hi_r),
                    origin_edge=od.origin_edge,
                    destination_edge=od.destination_edge,
                    degraded=True, source="route", degraded_tier=1)
                for s, od in zip(seconds, ods)]

    def _fallback_answers(self, queries: List[Query]
                          ) -> List[ServingResponse]:
        self.metrics.counter("fallback_answers").inc(len(queries))
        with self.tracer.span("serve.fallback", queries=len(queries)):
            seconds = self.fallback.estimate_seconds(queries)
            bands = self.fallback.bands(seconds)
        return [ServingResponse(
                    seconds=float(s), lower=lo, upper=hi,
                    origin_edge=-1, destination_edge=-1,
                    degraded=True, source="fallback", degraded_tier=2)
                for s, (lo, hi) in zip(seconds, bands)]

    # -- observability ---------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        snap = self.metrics.snapshot()
        snap["degraded"] = self.degraded
        return snap
