"""Shard routing: deterministic query → worker assignment.

The cluster partitions a city's query stream across worker processes.
Two policies:

``region`` (default)
    The origin coordinate is snapped to a square cell
    (``cell_metres``); the cell hashes to a shard.  Queries departing
    from the same neighbourhood always land on the same worker, so that
    worker's OD-match LRU sees every repeat of a popular pickup point —
    the cache-affinity argument for spatial partitioning.  The hash is
    CRC32 over the packed cell coordinates: stable across processes and
    Python runs (``hash()`` is salted per process and would scatter the
    same query differently on every restart).

``round_robin``
    Uniform load spreading with no affinity — the right policy when the
    query stream is spatially skewed enough to hot-spot one region
    shard.  Assignment depends on arrival order, so it is *not*
    deterministic across runs; per-query responses still are (any
    worker gives the same answer to the same query).
"""

from __future__ import annotations

import itertools
import struct
import threading
import zlib

from ...trajectory.model import Query

ROUTING_POLICIES = ("region", "round_robin")


class ShardRouter:
    """Maps queries to shard ids in ``range(num_shards)``."""

    def __init__(self, num_shards: int, policy: str = "region",
                 cell_metres: float = 500.0):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if policy not in ROUTING_POLICIES:
            raise ValueError(f"policy must be one of {ROUTING_POLICIES}")
        if cell_metres <= 0:
            raise ValueError("cell_metres must be > 0")
        self.num_shards = num_shards
        self.policy = policy
        self.cell_metres = float(cell_metres)
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def shard_of(self, query) -> int:
        """The shard responsible for ``query`` (Query or legacy triple)."""
        if self.num_shards == 1:
            return 0
        if self.policy == "round_robin":
            with self._lock:
                return next(self._counter) % self.num_shards
        query = Query.coerce(query)
        ox, oy = query.origin_xy
        cell = (int(ox // self.cell_metres), int(oy // self.cell_metres))
        digest = zlib.crc32(struct.pack("<qq", *cell))
        return digest % self.num_shards
