"""Sharded multi-process serving: scale the single-process
:class:`~repro.serving.TravelTimeService` horizontally.

``router``
    Deterministic query → shard assignment (region cells or round
    robin).
``worker``
    The per-shard process: a full serving stack behind a pipe, with
    hot model swap off the promotion gate's ``current`` symlink.
``cluster``
    :class:`ServingCluster` — fork + copy-on-write worker pool,
    per-shard cross-connection micro-batching, health checks, worker
    restart, load shedding, TEMP-fallback degradation.
``loadgen``
    The load-test harness behind ``cli loadtest`` and
    ``benchmarks/test_serving_load.py`` (``BENCH_serving.json``).
"""

from .cluster import ClusterConfig, ServingCluster
from .loadgen import (
    build_bench_payload, measure_saturation, measure_submit_throughput,
    run_load_test, run_open_loop, synthetic_queries, validate_bench_file,
    validate_bench_serving, write_bench,
)
from .router import ROUTING_POLICIES, ShardRouter
from .worker import WorkerOptions

__all__ = [
    "ClusterConfig", "ServingCluster",
    "ROUTING_POLICIES", "ShardRouter", "WorkerOptions",
    "build_bench_payload", "measure_saturation",
    "measure_submit_throughput", "run_load_test", "run_open_loop",
    "synthetic_queries", "validate_bench_file", "validate_bench_serving",
    "write_bench",
]
