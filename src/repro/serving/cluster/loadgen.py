"""Load-test harness: replay synthetic query streams, record the SLOs.

The paper's operating regime is a map-service backend answering
millions of OD queries under a latency budget (Table 5 measures the
per-query estimation cost that budget buys).  This module turns that
into a repeatable measurement:

* :func:`synthetic_queries` — a seeded, deterministic query stream
  drawn from a dataset's held-out trips with jittered departure times;
* :func:`measure_saturation` — closed-loop chunked ``query_batch``
  driving, the maximum sustained throughput of a target;
* :func:`measure_submit_throughput` — closed-loop driving of the
  ``submit`` path (per-shard micro-batchers pipelining batches), used
  for the multi-worker overlap floor;
* :func:`run_open_loop` — controlled-RPS arrivals with per-query
  completion latencies recorded into a ``repro.obs.metrics`` histogram
  (p50/p95/p99 come from its standard summary);
* :func:`build_bench_payload` / :func:`validate_bench_serving` /
  :func:`write_bench` — the ``BENCH_serving.json`` document
  (schema ``repro.bench.serving/v1``, fail-closed validation) that
  makes the serving perf trajectory visible across PRs.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...obs.metrics import MetricsRegistry
from ...trajectory.model import Query
from ..artifact import load_artifact
from ..errors import SaturatedError

BENCH_SCHEMA = "repro.bench.serving/v1"


# ---------------------------------------------------------------------------
def synthetic_queries(dataset, n: int, seed: int = 0) -> List[Query]:
    """A deterministic stream of ``n`` queries sampled from held-out
    trips, with departure times jittered inside the dataset horizon —
    the repetitive-but-not-identical shape of production traffic."""
    trips = dataset.split.test or dataset.split.train
    if not trips:
        raise ValueError("dataset has no trips to sample queries from")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(trips), size=n)
    jitter = rng.uniform(-300.0, 300.0, size=n)
    horizon = dataset.horizon_seconds
    queries = []
    for pick, dt in zip(picks, jitter):
        od = trips[int(pick)].od
        depart = float(np.clip(od.depart_time + dt, 0.0, horizon - 1.0))
        queries.append(Query(origin_xy=od.origin_xy,
                             destination_xy=od.destination_xy,
                             depart_time=depart))
    return queries


# ---------------------------------------------------------------------------
def measure_saturation(target, queries: Sequence[Query],
                       batch_size: int = 128) -> Dict[str, float]:
    """Closed-loop saturation throughput of ``target.query_batch``.

    Chunks of ``batch_size`` are driven back-to-back with no think
    time: the steady-state maximum rate the target sustains.  Works on
    a :class:`TravelTimeService` and a :class:`ServingCluster` alike.
    """
    queries = list(queries)
    degraded = 0
    start = time.perf_counter()
    for lo in range(0, len(queries), batch_size):
        responses = target.query_batch(queries[lo:lo + batch_size])
        degraded += sum(1 for r in responses if r.degraded)
    wall_s = time.perf_counter() - start
    return {"queries": len(queries), "wall_s": wall_s,
            "throughput_qps": len(queries) / wall_s,
            "degraded": degraded}


def measure_submit_throughput(cluster, queries: Sequence[Query]
                              ) -> Dict[str, float]:
    """Closed-loop throughput of the ``submit`` path: every query is
    enqueued up front and the per-shard micro-batchers pipeline batches
    through the workers until the backlog drains."""
    start = time.perf_counter()
    futures = [cluster.submit(q) for q in queries]
    responses = [f.result(timeout=300) for f in futures]
    wall_s = time.perf_counter() - start
    return {"queries": len(queries), "wall_s": wall_s,
            "throughput_qps": len(queries) / wall_s,
            "degraded": sum(1 for r in responses if r.degraded)}


def run_open_loop(target, queries: Sequence[Query], rps: float,
                  metrics: Optional[MetricsRegistry] = None,
                  timeout_s: float = 120.0) -> Dict[str, object]:
    """Open-loop replay at a controlled arrival rate.

    Arrivals follow the fixed schedule ``start + i/rps`` regardless of
    completions (the open-loop discipline — queueing delay shows up in
    the latencies instead of silently throttling the offered load).
    Completion latency lands in the ``loadtest.latency_ms`` histogram
    of ``metrics`` (or a private registry), whose standard summary
    yields p50/p95/p99.
    """
    if rps <= 0:
        raise ValueError("rps must be > 0")
    registry = metrics or MetricsRegistry()
    hist = registry.histogram("loadtest.latency_ms")
    shed = failed = 0
    futures = []
    start = time.perf_counter()
    for i, query in enumerate(queries):
        due = start + i / rps
        now = time.perf_counter()
        if due > now:
            time.sleep(due - now)
        sent = time.perf_counter()
        try:
            future = target.submit(query)
        except SaturatedError:
            shed += 1
            registry.counter("loadtest.shed").inc()
            continue

        def _record(f, sent=sent):
            hist.observe((time.perf_counter() - sent) * 1000.0)

        future.add_done_callback(_record)
        futures.append(future)
    degraded = 0
    for future in futures:
        try:
            if future.result(timeout=timeout_s).degraded:
                degraded += 1
        except Exception:
            failed += 1
    wall_s = time.perf_counter() - start
    summary = hist.summary()
    answered = len(futures) - failed
    return {
        "rps_target": rps,
        "rps_achieved": answered / wall_s if wall_s > 0 else 0.0,
        "queries": len(queries),
        "answered": answered,
        "shed": shed,
        "failed": failed,
        "degraded": degraded,
        "latency_ms": {"p50": summary["p50"], "p95": summary["p95"],
                       "p99": summary["p99"], "mean": summary["mean"],
                       "max": summary["max"]},
    }


# ---------------------------------------------------------------------------
def run_load_test(artifact_path: str, *, dataset=None, workers: int = 4,
                  queries: int = 256, rps: float = 100.0, seed: int = 0,
                  stall_ms: float = 50.0, floor: float = 2.0,
                  max_batch: int = 16, max_wait_s: float = 0.002,
                  routing: str = "region",
                  metrics: Optional[MetricsRegistry] = None) -> Dict:
    """The full serving load test; returns a validated bench payload.

    Three measurements, one artifact:

    ``overlap``
        Multi-worker scaling with a fixed ``stall_ms`` of injected
        per-batch work standing in for model latency on bigger hardware
        (the ``benchmarks/test_sweep_parallel`` pattern — honest on a
        single-core CI box, where CPU-bound scaling is impossible by
        construction).  Round-robin routing guarantees balanced shards,
        so the expected speedup is ~``workers``; the recorded ``floor``
        is what the benchmark asserts.
    ``model``
        Real-model saturation throughput, single process vs the
        ``workers``-shard cluster, no stall — the genuine numbers for
        this machine, recorded but never asserted below 4 cores.
    ``open_loop``
        Controlled-RPS replay against the no-stall cluster:
        p50/p95/p99 completion latency, shed/failed counts.
    """
    from ..service import TravelTimeService
    from .cluster import ClusterConfig, ServingCluster

    predictor = load_artifact(artifact_path, dataset=dataset)
    dataset = predictor.dataset
    stream = synthetic_queries(dataset, queries, seed=seed)

    def stalled_config(num_workers: int) -> "ClusterConfig":
        return ClusterConfig(num_workers=num_workers,
                             routing="round_robin", max_batch=max_batch,
                             max_wait_s=max_wait_s,
                             batch_stall_s=stall_ms / 1000.0)

    overlap = {"workers": workers, "stall_ms": stall_ms, "floor": floor,
               "queries": len(stream)}
    for key, num in (("single", 1), ("cluster", workers)):
        cluster = ServingCluster(artifact_path, dataset=dataset,
                                 config=stalled_config(num))
        cluster.start()
        try:
            overlap[f"{key}_qps"] = measure_submit_throughput(
                cluster, stream)["throughput_qps"]
        finally:
            cluster.stop()
    overlap["speedup"] = overlap["cluster_qps"] / overlap["single_qps"]

    service = TravelTimeService(predictor=predictor, dataset=dataset)
    single = measure_saturation(service, stream)
    cluster = ServingCluster(
        artifact_path, dataset=dataset,
        config=ClusterConfig(num_workers=workers, routing=routing,
                             max_batch=max_batch, max_wait_s=max_wait_s))
    cluster.start()
    try:
        scaled = measure_saturation(cluster, stream)
        model = {"workers": workers,
                 "single_qps": single["throughput_qps"],
                 "cluster_qps": scaled["throughput_qps"],
                 "speedup": (scaled["throughput_qps"]
                             / single["throughput_qps"]),
                 "degraded": scaled["degraded"]}
        open_loop = run_open_loop(cluster, stream, rps, metrics=metrics)
    finally:
        cluster.stop()

    return build_bench_payload(
        overlap, model, open_loop,
        config={"artifact": os.path.realpath(artifact_path),
                "queries": queries, "seed": seed, "rps": rps,
                "workers": workers, "max_batch": max_batch,
                "max_wait_s": max_wait_s, "routing": routing})


# ---------------------------------------------------------------------------
_REQUIRED_SECTION_KEYS = {
    "overlap": ("workers", "single_qps", "cluster_qps", "speedup",
                "floor", "stall_ms"),
    "model": ("workers", "single_qps", "cluster_qps", "speedup"),
    "open_loop": ("rps_target", "rps_achieved", "latency_ms", "queries",
                  "failed"),
}


def build_bench_payload(overlap: Dict, model: Dict, open_loop: Dict,
                        config: Optional[Dict] = None) -> Dict:
    """Assemble (and validate) a ``BENCH_serving.json`` document."""
    payload = {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),  # repro: allow[D003] benchmark-result timestamp for cross-PR trend reading, not a deterministic code path
        "cpus": len(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity") else os.cpu_count(),
        "config": dict(config or {}),
        "overlap": dict(overlap),
        "model": dict(model),
        "open_loop": dict(open_loop),
    }
    return validate_bench_serving(payload)


def validate_bench_serving(payload: Dict) -> Dict:
    """Fail-closed shape check of a serving-bench document."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"bench schema must be {BENCH_SCHEMA!r} "
                         f"(got {payload.get('schema')!r})")
    if not isinstance(payload.get("created_unix"), (int, float)):
        raise ValueError("bench created_unix must be a number")
    for section, keys in _REQUIRED_SECTION_KEYS.items():
        body = payload.get(section)
        if not isinstance(body, dict):
            raise ValueError(f"bench {section!r} must be an object")
        missing = set(keys) - set(body)
        if missing:
            raise ValueError(
                f"bench {section!r} missing keys {sorted(missing)}")
    latency = payload["open_loop"]["latency_ms"]
    if not isinstance(latency, dict):
        raise ValueError("open_loop latency_ms must be an object")
    for key in ("p50", "p95", "p99"):
        if not isinstance(latency.get(key), (int, float)):
            raise ValueError(f"open_loop latency_ms.{key} must be a number")
    for key in ("single_qps", "cluster_qps", "speedup"):
        for section in ("overlap", "model"):
            value = payload[section][key]
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"bench {section}.{key} must be a non-negative number")
    return payload


def write_bench(path: str, payload: Dict) -> str:
    """Validate and write a bench document; returns the path."""
    validate_bench_serving(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def validate_bench_file(path: str) -> Dict:
    """Load and validate a ``BENCH_serving.json`` (CI smoke entry)."""
    with open(path) as handle:
        return validate_bench_serving(json.load(handle))
