"""Shard worker: one process, one :class:`TravelTimeService`, hot swap.

A worker owns a full single-process serving stack (caches, fallback,
metrics) for its shard and answers batches shipped over a
``multiprocessing`` pipe by the parent's dispatcher.  Workers are
forked *after* the parent has built the dataset and loaded the deployed
predictor, so both arrive by copy-on-write — no per-worker dataset
regeneration, no per-worker weight load on a cold start.

**Hot swap.**  The worker watches ``watch_path`` — typically the
promotion gate's ``<deploy>/current`` symlink — by resolving its
realpath before every batch and on every idle poll tick.  When the
realpath changes (the gate's atomic symlink flip), the worker has by
construction no in-flight work (it answers one batch at a time; queued
requests wait in the pipe), so it reloads in place and the next batch
runs on the new model.  A reload that fails — mid-copy artifact,
checksum mismatch, dataset-fingerprint drift — keeps the old predictor
serving and retries on the next tick: a bad push can never take a shard
down, and no request is ever dropped across a swap.

The wire protocol is deliberately tiny (tuples over a duplex pipe)::

    ("batch", [(origin, destination, depart_time), ...])
        -> ("ok", [(seconds, lower, upper, o_edge, d_edge,
                    degraded, source, degraded_tier), ...])
        |  ("err", "<repr of the failure>")
    ("ping",)  -> ("pong", {shard, pid, version, queries, swaps, ...})
    ("speeds", {period: matrix, ...})
        -> ("ok", n_slices)   (live speed-slice push; see
                               ``TravelTimeService.apply_live_speeds``)
    ("stop",)  -> worker exits
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...serving.artifact import ArtifactError, load_artifact
from ...trajectory.model import Query
from ..service import ServiceConfig, ServingResponse, TravelTimeService


@dataclass
class WorkerOptions:
    """Per-worker knobs shipped from :class:`ClusterConfig`.

    ``batch_stall_s`` injects a fixed sleep before every answered batch.
    It exists for the load harness and the degradation tests: a
    controlled stand-in for model latency on bigger hardware (the same
    fixed-duration-work pattern as ``benchmarks/test_sweep_parallel``),
    and a deterministic way to saturate a shard.  Production configs
    leave it at 0.
    """

    swap_poll_s: float = 0.05
    batch_stall_s: float = 0.0
    service: Optional[ServiceConfig] = None


ResponseRow = Tuple[float, float, float, int, int, bool, str, int]


def response_to_row(response: ServingResponse) -> ResponseRow:
    return (response.seconds, response.lower, response.upper,
            response.origin_edge, response.destination_edge,
            response.degraded, response.source, response.degraded_tier)


def row_to_response(row: ResponseRow) -> ServingResponse:
    return ServingResponse(seconds=row[0], lower=row[1], upper=row[2],
                           origin_edge=row[3], destination_edge=row[4],
                           degraded=row[5], source=row[6],
                           degraded_tier=row[7] if len(row) > 7 else 0)


class _WorkerState:
    """The live model + service of one worker, reloadable in place."""

    def __init__(self, shard_id: int, watch_path: str, version: str,
                 predictor, dataset, options: WorkerOptions):
        self.shard_id = shard_id
        self.watch_path = watch_path
        self.version = version
        self.dataset = dataset
        self.options = options
        self.swaps = 0
        self.swap_failures = 0
        self._live_slices: dict = {}
        self._build_service(predictor)

    def _build_service(self, predictor) -> None:
        # The worker answers pre-batched requests synchronously, so its
        # service never starts the internal micro-batcher thread —
        # batching happens once, in the parent, across connections.
        self.service = TravelTimeService(
            predictor=predictor, dataset=self.dataset,
            config=self.options.service or ServiceConfig())
        if self._live_slices:
            # Live traffic state outlives a hot swap: the new model must
            # not serve from stale training-time speeds.
            self.service.apply_live_speeds(dict(self._live_slices))

    def apply_speeds(self, slices: dict) -> int:
        self._live_slices.update(
            {int(p): m for p, m in slices.items()})
        return self.service.apply_live_speeds(slices)

    def maybe_reload(self) -> bool:
        """Reload iff the watched artifact now resolves elsewhere.

        Fail-closed on a broken candidate: the old model keeps serving
        and the reload is retried on the next tick.
        """
        target = os.path.realpath(self.watch_path)
        if target == self.version:
            return False
        try:
            predictor = load_artifact(target, dataset=self.dataset)
        except ArtifactError:
            self.swap_failures += 1
            return False
        self._build_service(predictor)
        self.version = target
        self.swaps += 1
        return True

    def answer(self, rows: List[Tuple]) -> List[ResponseRow]:
        if self.options.batch_stall_s > 0:
            time.sleep(self.options.batch_stall_s)
        queries = [Query.coerce(row) for row in rows]
        return [response_to_row(r)
                for r in self.service.query_batch(queries)]

    def info(self) -> dict:
        metrics = self.service.metrics
        return {
            "shard": self.shard_id,
            "pid": os.getpid(),
            "version": self.version,
            "queries": metrics.counter("queries_total").value,
            "swaps": self.swaps,
            "swap_failures": self.swap_failures,
            "degraded": self.service.degraded,
            "od_cache_hit_rate": (self.service.od_cache.hit_rate
                                  if self.service.od_cache else 0.0),
        }


def worker_main(conn, shard_id: int, watch_path: str,
                inherited: Optional[Tuple], options: WorkerOptions) -> None:
    """Process entry point: serve batches from ``conn`` until told to stop.

    ``inherited`` is ``(version, predictor, dataset)`` under the fork
    start method (copy-on-write, nothing pickled); ``None`` under spawn,
    in which case the worker loads the artifact itself (the manifest's
    recorded build parameters regenerate the dataset).
    """
    if inherited is not None:
        version, predictor, dataset = inherited
    else:
        version = os.path.realpath(watch_path)
        predictor = load_artifact(version)
        dataset = predictor.dataset
    state = _WorkerState(shard_id, watch_path, version, predictor,
                         dataset, options)
    try:
        while True:
            if not conn.poll(options.swap_poll_s):
                state.maybe_reload()      # idle tick: pick up swaps
                continue
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "ping":
                state.maybe_reload()
                conn.send(("pong", state.info()))
                continue
            if kind == "batch":
                state.maybe_reload()      # swap lands between batches
                try:
                    conn.send(("ok", state.answer(message[1])))
                except Exception as exc:  # containment: shard survives
                    conn.send(("err", repr(exc)))
                continue
            if kind == "speeds":
                try:
                    conn.send(("ok", state.apply_speeds(message[1])))
                except Exception as exc:  # containment: shard survives
                    conn.send(("err", repr(exc)))
                continue
            conn.send(("err", f"unknown message kind {kind!r}"))
    except (EOFError, BrokenPipeError, ConnectionResetError, OSError,
            KeyboardInterrupt):
        return                            # parent went away; exit quietly
    finally:
        conn.close()
