"""ServingCluster: sharded multi-process serving with hot model swap.

The single-process :class:`~repro.serving.TravelTimeService` tops out
at one core's worth of model calls.  The cluster scales it horizontally
while keeping its public surface (``query`` / ``query_batch`` /
``submit`` / ``answer`` / ``metrics_snapshot``), so the HTTP front-end
and the JSON-lines loop serve either interchangeably:

* a :class:`ShardRouter` partitions queries by origin region across
  ``num_workers`` worker processes (cache affinity: a popular pickup
  point always hits the same worker's LRU);
* workers are **forked after** the parent builds the dataset and loads
  the deployed predictor, so the heavy read-only state is shared
  copy-on-write — the sweep-executor pattern applied to serving;
* each shard has a parent-side :class:`MicroBatcher`, so single queries
  from many concurrent connections coalesce into vectorised batches
  *across* callers before crossing the process boundary;
* workers watch the promotion gate's ``current`` symlink and **hot
  swap** to newly promoted artifacts between batches — queued requests
  wait out the reload in the pipe, none are dropped (see
  ``worker.py``);
* degradation is graceful and layered: a crashed worker is restarted
  and the batch retried; a shard past its restart budget is served
  from the parent's TEMP fallback (``degraded`` responses); a full
  admission queue sheds load with :class:`SaturatedError` (HTTP 503)
  or, opted in, absorbs it into the fallback.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, List, Optional, Sequence

from ...obs.instrument import Instrumented
from ...obs.metrics import MetricsRegistry
from ...obs.tracing import Tracer
from ...trajectory.model import Query
from ..artifact import load_artifact
from ..batcher import MicroBatcher
from ..errors import SaturatedError
from ..fallback import HistoricalAverageFallback
from ..service import ServiceConfig, ServingResponse
from .router import ROUTING_POLICIES, ShardRouter
from .worker import WorkerOptions, row_to_response, worker_main

_DISPATCH_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError,
                    TimeoutError, OSError)


@dataclass
class ClusterConfig:
    """Operational knobs of the sharded serving stack.

    ``max_pending`` bounds each shard's admission queue (0 = unbounded);
    ``saturation_fallback`` answers shed queries from the TEMP fallback
    (degraded, never failed) instead of raising ``SaturatedError``.
    ``batch_stall_s`` injects fixed per-batch work in every worker —
    the load harness's stand-in for model latency on bigger hardware
    (see :class:`WorkerOptions`); production configs leave it 0.
    """

    num_workers: int = 2
    routing: str = "region"
    cell_metres: float = 500.0
    max_batch: int = 64
    max_wait_s: float = 0.002
    max_pending: int = 2048
    saturation_fallback: bool = False
    dispatch_timeout_s: float = 30.0
    restart_limit: int = 3
    swap_poll_s: float = 0.05
    batch_stall_s: float = 0.0
    service: Optional[ServiceConfig] = None

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"routing must be one of {ROUTING_POLICIES}")
        if self.max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if self.dispatch_timeout_s <= 0:
            raise ValueError("dispatch_timeout_s must be > 0")
        if self.restart_limit < 0:
            raise ValueError("restart_limit must be >= 0")

    def worker_options(self) -> WorkerOptions:
        return WorkerOptions(swap_poll_s=self.swap_poll_s,
                             batch_stall_s=self.batch_stall_s,
                             service=self.service)


@dataclass
class _ShardHandle:
    """Parent-side state of one worker process."""

    shard_id: int
    process: object = None
    conn: object = None
    lock: Lock = field(default_factory=Lock)
    batcher: Optional[MicroBatcher] = None
    restarts: int = 0
    dead: bool = False
    last_info: Dict = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return (not self.dead and self.process is not None
                and self.process.is_alive())


def _cluster_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class ServingCluster(Instrumented):
    """Multi-process front door over a deployed model artifact.

    Parameters
    ----------
    artifact_path:
        An artifact directory or — for hot swap — the promotion gate's
        ``<deploy>/current`` symlink.  Validated fail-closed up front
        (:class:`~repro.serving.ArtifactError` propagates); workers
        watch this path for version changes for as long as they live.
    dataset:
        Skips dataset regeneration when the caller already holds the
        training dataset (it is fingerprint-checked regardless).
    """

    def __init__(self, artifact_path: str,
                 dataset=None,
                 config: Optional[ClusterConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.tracer = tracer
        self.config = config or ClusterConfig()
        self.watch_path = artifact_path
        self.metrics = metrics or MetricsRegistry()
        self.router = ShardRouter(self.config.num_workers,
                                  policy=self.config.routing,
                                  cell_metres=self.config.cell_metres)

        # Load once in the parent: workers inherit all of this
        # copy-on-write at fork time (zero per-worker load cost).
        self._version = os.path.realpath(artifact_path)
        self._predictor = load_artifact(self._version, dataset=dataset)
        self.dataset = self._predictor.dataset
        self.fallback = HistoricalAverageFallback(self.dataset)

        self._handles: List[_ShardHandle] = [
            _ShardHandle(shard_id=i)
            for i in range(self.config.num_workers)]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._state_lock = Lock()
        self.metrics.register_gauge("cluster.shards", self._shard_gauge)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ServingCluster":
        """Fork the worker pool and start the per-shard dispatchers."""
        if self._started:
            return self
        ctx = _cluster_context()
        inherit = ctx.get_start_method() == "fork"
        # Fork all workers before starting any thread: forking a
        # threaded process can clone held locks into the children.
        for handle in self._handles:
            self._spawn_worker(handle, ctx, inherit)
        for handle in self._handles:
            handle.batcher = MicroBatcher(
                self._make_dispatcher(handle.shard_id),
                max_batch=self.config.max_batch,
                max_wait_s=self.config.max_wait_s,
                on_batch=lambda n: self.metrics.histogram(
                    "cluster.batch_size").observe(n))
            handle.batcher.start()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.num_workers,
            thread_name_prefix="cluster-dispatch")
        self._started = True
        return self

    def stop(self) -> None:
        """Drain the dispatchers, then retire the worker pool."""
        if not self._started:
            return
        for handle in self._handles:
            if handle.batcher is not None:
                handle.batcher.stop()    # drains pending through workers
        for handle in self._handles:
            self._retire_worker(handle)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._started = False

    def _spawn_worker(self, handle: _ShardHandle, ctx, inherit: bool
                      ) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        inherited = ((self._version, self._predictor, self.dataset)
                     if inherit else None)
        process = ctx.Process(
            target=worker_main,
            args=(child_conn, handle.shard_id, self.watch_path,
                  inherited, self.config.worker_options()),
            name=f"serving-shard-{handle.shard_id}", daemon=True)
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.dead = False
        handle.last_info = {"shard": handle.shard_id, "pid": process.pid,
                            "alive": True, "restarts": handle.restarts}

    def _retire_worker(self, handle: _ShardHandle) -> None:
        if handle.process is None:
            return
        try:
            if handle.process.is_alive():
                handle.conn.send(("stop",))
        except _DISPATCH_ERRORS:
            pass
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except OSError:
            pass

    def _restart_shard(self, handle: _ShardHandle) -> bool:
        """Replace a crashed/hung worker; False once past the budget."""
        with self._state_lock:
            if handle.dead:
                return False
            if handle.restarts >= self.config.restart_limit:
                handle.dead = True
                handle.last_info = {"shard": handle.shard_id,
                                    "alive": False,
                                    "restarts": handle.restarts}
                return False
            self._retire_worker(handle)
            handle.restarts += 1
            self.metrics.counter("cluster.worker_restarts").inc()
            ctx = _cluster_context()
            self._spawn_worker(handle, ctx,
                               ctx.get_start_method() == "fork")
            return True

    # -- dispatch --------------------------------------------------------
    def _make_dispatcher(self, shard_id: int):
        return lambda queries: self._dispatch(shard_id, queries)

    def _dispatch(self, shard_id: int,
                  queries: List[Query]) -> List[ServingResponse]:
        """Ship one batch to a shard; restart-and-retry once on a crash;
        degrade to the parent-side fallback when the shard is gone."""
        handle = self._handles[shard_id]
        rows = [query.as_tuple() for query in queries]
        worker_error = None
        for _attempt in (0, 1):
            if not handle.alive and not self._restart_shard(handle):
                break
            try:
                with handle.lock:
                    handle.conn.send(("batch", rows))
                    if not handle.conn.poll(self.config.dispatch_timeout_s):
                        raise TimeoutError(
                            f"shard {shard_id} did not answer within "
                            f"{self.config.dispatch_timeout_s}s")
                    kind, payload = handle.conn.recv()
            except _DISPATCH_ERRORS:
                self.metrics.counter("cluster.shard_errors").inc()
                if not self._restart_shard(handle):
                    break
                continue
            if kind == "ok":
                return [row_to_response(row) for row in payload]
            # The worker survived but the batch failed inside it; its
            # own service already tried the TEMP fallback, so this is
            # exceptional — answer from the parent fallback instead.
            worker_error = payload
            self.metrics.counter("cluster.shard_errors").inc()
            break
        self.tracer.annotate(shard_failed=shard_id,
                             worker_error=worker_error or "")
        return self._fallback_answers(queries)

    def _fallback_answers(self, queries: Sequence[Query]
                          ) -> List[ServingResponse]:
        self.metrics.counter("cluster.fallback_answers").inc(len(queries))
        seconds = self.fallback.estimate_seconds(queries)
        bands = self.fallback.bands(seconds)
        return [ServingResponse(seconds=float(s), lower=lo, upper=hi,
                                origin_edge=-1, destination_edge=-1,
                                degraded=True, source="fallback",
                                degraded_tier=2)
                for s, (lo, hi) in zip(seconds, bands)]

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("cluster not started; call start() first")

    # -- live traffic state ----------------------------------------------
    def publish_speeds(self, slices: Dict) -> int:
        """Broadcast freshly estimated speed-matrix slices to every
        shard (see ``TravelTimeService.apply_live_speeds``).

        Returns the number of shards that acknowledged the push.  A
        shard that is dead or mid-restart simply misses this round — it
        catches up on the next publish, and in the meantime answers from
        the training-time store (stale but valid), so a push can never
        take a shard down.
        """
        self._require_started()
        if not slices:
            return 0
        payload = {int(p): m for p, m in slices.items()}
        acknowledged = 0
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                with handle.lock:
                    handle.conn.send(("speeds", payload))
                    if not handle.conn.poll(self.config.dispatch_timeout_s):
                        raise TimeoutError(
                            f"shard {handle.shard_id} did not ack speeds")
                    kind, _ = handle.conn.recv()
                if kind == "ok":
                    acknowledged += 1
                else:
                    self.metrics.counter("cluster.shard_errors").inc()
            except _DISPATCH_ERRORS:
                self.metrics.counter("cluster.shard_errors").inc()
        self.metrics.counter("cluster.speed_publishes").inc(len(payload))
        return acknowledged

    # -- query paths -----------------------------------------------------
    def query(self, query, destination_xy=None,
              depart_time=None) -> ServingResponse:
        """Answer one query synchronously (same forms as the service)."""
        if destination_xy is not None:
            query = Query(origin_xy=tuple(query),
                          destination_xy=tuple(destination_xy),
                          depart_time=depart_time)
        return self.query_batch([query])[0]

    def query_batch(self, queries: Sequence) -> List[ServingResponse]:
        """Answer many queries in one pass, fanned out across shards.

        Sub-batches dispatch to their shards concurrently (one thread
        per shard), so a closed-loop caller drives every worker at
        once; responses come back in input order.
        """
        self._require_started()
        queries = [Query.coerce(q) for q in queries]
        if not queries:
            return []
        start = time.perf_counter()
        self.metrics.counter("cluster.queries_total").inc(len(queries))
        by_shard: Dict[int, List[int]] = {}
        for i, query in enumerate(queries):
            by_shard.setdefault(self.router.shard_of(query), []).append(i)
        responses: List[Optional[ServingResponse]] = [None] * len(queries)
        with self.tracer.span("cluster.request", queries=len(queries),
                              shards=len(by_shard)):
            futures = {
                self._pool.submit(self._dispatch, shard,
                                  [queries[i] for i in indices]): indices
                for shard, indices in by_shard.items()}
            for future, indices in futures.items():
                for i, response in zip(indices, future.result()):
                    responses[i] = response
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        hist = self.metrics.histogram("cluster.latency_ms")
        for _ in responses:
            hist.observe(elapsed_ms / len(responses))
        return responses

    def submit(self, query, destination_xy=None, depart_time=None):
        """Enqueue one query on its shard's micro-batcher; returns a
        future.  Sheds load once the shard's admission queue holds
        ``max_pending`` queries — with ``SaturatedError`` by default,
        or a degraded TEMP answer under ``saturation_fallback``.
        """
        self._require_started()
        if destination_xy is not None:
            query = Query(origin_xy=tuple(query),
                          destination_xy=tuple(destination_xy),
                          depart_time=depart_time)
        query = Query.coerce(query)
        handle = self._handles[self.router.shard_of(query)]
        limit = self.config.max_pending
        if limit and handle.batcher.pending >= limit:
            self.metrics.counter("cluster.saturated_rejections").inc()
            if self.config.saturation_fallback:
                future: Future = Future()
                future.set_result(self._fallback_answers([query])[0])
                return future
            raise SaturatedError(
                f"shard {handle.shard_id} queue full "
                f"({limit} queries pending)",
                retry_after_s=self.config.max_wait_s * 2)
        self.metrics.counter("cluster.queries_total").inc()
        enqueued = time.perf_counter()
        future = handle.batcher.submit(query)
        future.add_done_callback(
            lambda f: self.metrics.histogram("cluster.latency_ms").observe(
                (time.perf_counter() - enqueued) * 1000.0))
        return future

    def answer(self, query) -> ServingResponse:
        """Front-end entry point: batched across connections when the
        dispatchers are running (mirrors ``TravelTimeService.answer``)."""
        if self._started:
            return self.submit(query).result()
        return self.query(query)

    # -- health / observability ------------------------------------------
    @property
    def degraded(self) -> bool:
        """True only when every shard is past its restart budget (the
        whole pool answers from the parent-side TEMP fallback)."""
        return all(handle.dead for handle in self._handles)

    def health(self, timeout_s: float = 2.0) -> List[Dict]:
        """Live per-shard health: ping each worker, collect its info.

        Pings also make idle workers re-check the watched artifact, so
        ``health()`` after a promotion deterministically completes the
        swap on every shard.
        """
        infos: List[Dict] = []
        for handle in self._handles:
            info = {"shard": handle.shard_id, "alive": False,
                    "restarts": handle.restarts}
            if handle.alive:
                try:
                    with handle.lock:
                        handle.conn.send(("ping",))
                        if not handle.conn.poll(timeout_s):
                            raise TimeoutError("ping timed out")
                        kind, payload = handle.conn.recv()
                    if kind == "pong":
                        info.update(payload)
                        info["alive"] = True
                except _DISPATCH_ERRORS as exc:
                    info["error"] = repr(exc)
            handle.last_info = info
            infos.append(info)
        return infos

    def health_snapshot(self) -> Dict:
        """Cached shard states (no worker round-trips) for ``/healthz``."""
        shards = [dict(handle.last_info) for handle in self._handles]
        return {"workers": len(self._handles),
                "healthy": sum(1 for handle in self._handles
                               if handle.alive),
                "degraded": self.degraded,
                "shards": shards}

    def _shard_gauge(self) -> List[Dict]:
        return [dict(handle.last_info) for handle in self._handles]

    def metrics_snapshot(self) -> Dict[str, object]:
        snap = self.metrics.snapshot()
        snap["degraded"] = self.degraded
        return snap
