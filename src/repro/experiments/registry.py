"""Run registry: durable, queryable records of every training run.

Each run owns one directory under the registry root::

    <root>/<run_id>/
        run.json          identity + status + final metrics
        config.json       the exact DeepODConfig of the run
        metrics.jsonl     one line per validation evaluation
        report.json       final held-out report (written on completion)
        checkpoints/      training snapshots (see ``checkpoint.py``)
        artifact/         optional serving artifact of the trained model

Run ids are deterministic — ``<city>-<config_hash[:10]>-s<seed>`` — so
re-running the same experiment lands in the same directory (the previous
attempt's record is overwritten, its checkpoints reused for resume).
The registry is a plain directory tree: safe under concurrent writers as
long as each worker owns a distinct run id, which the sweep executor
guarantees by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import DeepODConfig

RUN_FILE = "run.json"
CONFIG_FILE = "config.json"
METRICS_FILE = "metrics.jsonl"
REPORT_FILE = "report.json"
TRACE_FILE = "trace.json"
CHECKPOINTS_DIR = "checkpoints"
ARTIFACT_DIR = "artifact"

STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"


class RegistryError(Exception):
    """The registry or a run record is missing or malformed."""


def config_hash(config: DeepODConfig,
                dataset_params: Optional[Dict] = None) -> str:
    """Deterministic hash of a config (+ dataset identity).

    Uses the sorted-JSON form of the dataclass, so two configs hash equal
    iff every field is equal — the run id's collision-free backbone.
    """
    payload = {"config": dataclasses.asdict(config)}
    if dataset_params:
        payload["dataset"] = dict(dataset_params)
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def make_run_id(city: str, config: DeepODConfig, seed: int,
                dataset_params: Optional[Dict] = None) -> str:
    return f"{city}-{config_hash(config, dataset_params)[:10]}-s{seed}"


@dataclass
class RunRecord:
    """The queryable summary of one run (mirrors ``run.json``)."""

    run_id: str
    status: str
    city: str
    seed: int
    config_hash: str
    dataset_fingerprint: str = ""
    dataset_params: Dict = field(default_factory=dict)
    started_unix: float = 0.0
    finished_unix: float = 0.0
    metrics: Dict = field(default_factory=dict)
    error: str = ""

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


class Run:
    """Handle on one run directory: paths + record IO + metric streaming."""

    def __init__(self, directory: str, record: RunRecord):
        self.directory = directory
        self.record = record

    # -- paths ----------------------------------------------------------
    @property
    def run_id(self) -> str:
        return self.record.run_id

    @property
    def checkpoints_dir(self) -> str:
        return os.path.join(self.directory, CHECKPOINTS_DIR)

    @property
    def artifact_dir(self) -> str:
        return os.path.join(self.directory, ARTIFACT_DIR)

    @property
    def metrics_path(self) -> str:
        return os.path.join(self.directory, METRICS_FILE)

    @property
    def trace_path(self) -> str:
        return os.path.join(self.directory, TRACE_FILE)

    # -- record IO ------------------------------------------------------
    def save_record(self) -> None:
        _write_json(os.path.join(self.directory, RUN_FILE),
                    self.record.to_dict())

    def append_metric(self, step: int, val_mae: float, lr: float,
                      **extra) -> None:
        """Append one evaluation to ``metrics.jsonl`` (crash-durable:
        each line is flushed before the call returns)."""
        line = {"step": int(step), "val_mae": float(val_mae),
                "lr": float(lr), **extra}
        with open(self.metrics_path, "a") as handle:
            handle.write(json.dumps(line, sort_keys=True) + "\n")
            handle.flush()

    def metrics_history(self) -> List[Dict]:
        if not os.path.exists(self.metrics_path):
            return []
        rows = []
        with open(self.metrics_path) as handle:
            for raw in handle:
                raw = raw.strip()
                if raw:
                    rows.append(json.loads(raw))
        return rows

    def write_report(self, report: Dict) -> None:
        _write_json(os.path.join(self.directory, REPORT_FILE), report)

    def write_trace(self, trace: Dict) -> None:
        """Persist a span-tree trace (``repro.obs`` schema) next to the
        JSONL metrics, so a run's stage-level timing is queryable with
        the rest of its record."""
        _write_json(self.trace_path, trace)

    def read_trace(self) -> Optional[Dict]:
        if not os.path.exists(self.trace_path):
            return None
        with open(self.trace_path) as handle:
            return json.load(handle)

    def read_report(self) -> Optional[Dict]:
        path = os.path.join(self.directory, REPORT_FILE)
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            return json.load(handle)

    # -- lifecycle ------------------------------------------------------
    def mark_completed(self, metrics: Dict) -> None:
        self.record.status = STATUS_COMPLETED
        self.record.finished_unix = time.time()
        self.record.metrics = dict(metrics)
        self.save_record()

    def mark_failed(self, error: str) -> None:
        self.record.status = STATUS_FAILED
        self.record.finished_unix = time.time()
        self.record.error = str(error)
        self.save_record()


class RunRegistry:
    """All runs under one root directory."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- creation -------------------------------------------------------
    def create_run(self, city: str, config: DeepODConfig, seed: int,
                   dataset_params: Optional[Dict] = None,
                   dataset_fingerprint: str = "") -> Run:
        """Open (or re-open) the run directory for this experiment.

        Re-creating an existing run id resets its record to ``running``
        but keeps checkpoints, so an interrupted run resumes in place.
        """
        run_id = make_run_id(city, config, seed, dataset_params)
        directory = os.path.join(self.root, run_id)
        os.makedirs(directory, exist_ok=True)
        os.makedirs(os.path.join(directory, CHECKPOINTS_DIR), exist_ok=True)
        record = RunRecord(
            run_id=run_id, status=STATUS_RUNNING, city=city, seed=seed,
            config_hash=config_hash(config, dataset_params),
            dataset_fingerprint=dataset_fingerprint,
            dataset_params=dict(dataset_params or {}),
            started_unix=time.time())
        run = Run(directory, record)
        _write_json(os.path.join(directory, CONFIG_FILE),
                    dataclasses.asdict(config))
        run.save_record()
        return run

    # -- queries --------------------------------------------------------
    def get(self, run_id: str) -> Run:
        directory = os.path.join(self.root, run_id)
        path = os.path.join(directory, RUN_FILE)
        if not os.path.exists(path):
            raise RegistryError(f"unknown run {run_id!r} under {self.root}")
        with open(path) as handle:
            try:
                record = RunRecord.from_dict(json.load(handle))
            except (json.JSONDecodeError, TypeError) as exc:
                raise RegistryError(f"corrupt run record {path}: {exc}")
        return Run(directory, record)

    def list_runs(self, status: Optional[str] = None) -> List[Run]:
        """All runs, newest-started first; optionally filtered by status."""
        runs = []
        if not os.path.isdir(self.root):
            return runs
        for name in sorted(os.listdir(self.root)):
            if not os.path.exists(os.path.join(self.root, name, RUN_FILE)):
                continue
            run = self.get(name)
            if status is None or run.record.status == status:
                runs.append(run)
        runs.sort(key=lambda r: r.record.started_unix, reverse=True)
        return runs

    def best_run(self, metric: str = "test_mae",
                 status: str = STATUS_COMPLETED) -> Optional[Run]:
        """The completed run minimising ``metric`` (lower is better)."""
        best: Optional[Run] = None
        for run in self.list_runs(status=status):
            value = run.record.metrics.get(metric)
            if value is None:
                continue
            if best is None or value < best.record.metrics[metric]:
                best = run
        return best

    def load_config(self, run_id: str) -> DeepODConfig:
        path = os.path.join(self.root, run_id, CONFIG_FILE)
        if not os.path.exists(path):
            raise RegistryError(f"run {run_id!r} has no config.json")
        with open(path) as handle:
            payload = json.load(handle)
        known = {f.name for f in dataclasses.fields(DeepODConfig)}
        unknown = set(payload) - known
        if unknown:
            raise RegistryError(
                f"run config has unknown fields {sorted(unknown)}")
        try:
            return DeepODConfig(**payload)
        except (TypeError, ValueError) as exc:
            raise RegistryError(f"invalid run config: {exc}")


def _write_json(path: str, payload: Dict) -> None:
    tmp = path + f".tmp-{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
