"""Single-run execution: train one configuration under the registry.

``execute_run`` is the unit of work everything else composes: the
``exp run`` CLI calls it once, the sweep executor fans it out across
worker processes.  It owns the full offline lifecycle of Algorithm 1 —
build dataset, build model, fit (with checkpointing and streamed
metrics), evaluate held-out error, persist a serving artifact — and
always leaves a queryable record behind, even on failure.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.config import DeepODConfig
from ..core.predictor import TravelTimePredictor
from ..core.trainer import DeepODTrainer, build_deepod
from ..datagen.dataset import (
    TaxiDataset, dataset_fingerprint, strip_trajectories,
)
from ..datagen.pipeline import DatasetSpec, build
from ..eval.metrics import mae, mape
from ..obs.tracing import NULL_TRACER, Tracer
from .checkpoint import (latest_checkpoint, load_checkpoint,
                         save_checkpoint)
from .registry import Run, RunRegistry


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one training run.

    Picklable by construction (plain dataclasses and primitives), so
    sweep workers can receive specs across process boundaries.

    ``overrides`` are applied to ``config`` lazily, in the process that
    executes the run — an invalid override therefore fails *that run*
    (and is recorded as such), never the sweep that scheduled it.
    """

    city: str
    config: DeepODConfig
    seed: int = 0
    overrides: Dict = field(default_factory=dict)
    trips: int = 1000
    days: int = 14
    epochs: Optional[int] = None        # None -> config.epochs
    eval_every: int = 20
    checkpoint_every: int = 0
    coverage: float = 0.8
    save_artifact: bool = True

    @property
    def dataset_params(self) -> Dict[str, object]:
        return {"city": self.city, "num_trips": self.trips,
                "num_days": self.days}

    def effective_config(self) -> DeepODConfig:
        """The run's concrete config: overrides applied, spec seed wins.

        Raises ``ValueError`` for overrides the config rejects — by
        design at execution time, not at grid-expansion time.
        """
        config = self.config
        if self.overrides:
            config = config.with_overrides(**self.overrides)
        if config.seed != self.seed:
            config = config.with_overrides(seed=self.seed)
        return config


@dataclass
class RunResult:
    """What a run hands back to its caller (and records in the registry)."""

    run_id: str
    status: str
    city: str
    seed: int
    overrides: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)
    error: str = ""
    artifact_dir: str = ""

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


def build_run_dataset(spec: RunSpec,
                      tracer: Optional[Tracer] = None) -> TaxiDataset:
    return build(DatasetSpec(spec.city, num_trips=spec.trips,
                             num_days=spec.days), tracer=tracer)


def execute_run(spec: RunSpec,
                registry: Optional[RunRegistry] = None,
                dataset: Optional[TaxiDataset] = None,
                resume: bool = True,
                tracer: Optional[Tracer] = None) -> RunResult:
    """Train one configuration end to end.

    With a registry, the run streams metrics to ``metrics.jsonl``,
    checkpoints under its own directory (resuming from the latest
    snapshot when ``resume`` and one exists), writes a final report and
    — when ``spec.save_artifact`` — a serving artifact.  Without one it
    is a plain in-memory training run (used by tests and quick sweeps).

    Every registered run is traced: phase spans (dataset build, model
    build, fit with per-epoch breakdown, held-out evaluation, artifact
    write) land in ``trace.json`` next to the run's JSONL metrics.
    Pass ``tracer`` to capture the same spans for an unregistered run
    (or to share one tracer across phases the caller also times).
    """
    config = spec.effective_config()
    # A registered run always records its trace; unregistered runs
    # trace only when the caller supplies a tracer.
    tracer = tracer if tracer is not None else (
        Tracer() if registry is not None else NULL_TRACER)
    with tracer.span("run.execute", city=spec.city, seed=spec.seed,
                     overrides=dict(spec.overrides)):
        if dataset is None:
            with tracer.span("run.dataset"):
                dataset = build_run_dataset(spec, tracer=tracer)

        run: Optional[Run] = None
        if registry is not None:
            run = registry.create_run(
                spec.city, config, spec.seed,
                dataset_params=spec.dataset_params,
                dataset_fingerprint=dataset_fingerprint(dataset))

        try:
            with tracer.span("run.build_model"):
                model = build_deepod(dataset, config, tracer=tracer)
            trainer = DeepODTrainer(model, dataset,
                                    eval_every=spec.eval_every,
                                    tracer=tracer)

            checkpoint_dir = run.checkpoints_dir if run else None
            if run and resume and latest_checkpoint(run.checkpoints_dir):
                with tracer.span("run.resume"):
                    load_checkpoint(trainer, run.checkpoints_dir)

            on_eval = None
            if run is not None:
                on_eval = lambda step, val, lr: \
                    run.append_metric(step, val, lr)
            history = trainer.fit(
                epochs=spec.epochs,
                checkpoint_every=spec.checkpoint_every if run else 0,
                checkpoint_dir=checkpoint_dir,
                checkpoint_fn=save_checkpoint,
                on_eval=on_eval)

            with tracer.span("run.evaluate"):
                test = strip_trajectories(dataset.split.test)
                preds = trainer.predict(test)
                actual = np.array([t.travel_time for t in test])
                metrics = {
                    "test_mae": mae(actual, preds),
                    "test_mape": mape(actual, preds),
                    "final_val_mae": (history.val_mae[-1]
                                      if history.val_mae
                                      else float("nan")),
                    "steps": trainer._step,
                    "wall_seconds": history.wall_seconds,
                }

            artifact_dir = ""
            if run is not None and spec.save_artifact:
                from ..serving.artifact import save_artifact
                with tracer.span("run.artifact"):
                    predictor = TravelTimePredictor(
                        trainer, coverage=spec.coverage)
                    artifact_dir = save_artifact(
                        run.artifact_dir, predictor,
                        extra_manifest={
                            "run_id": run.run_id,
                            "config_hash": run.record.config_hash,
                            "seed": spec.seed})

            if run is not None:
                run.mark_completed(metrics)
                run.write_report({
                    "run_id": run.run_id,
                    "metrics": metrics,
                    "convergence_step": history.convergence_step(),
                    "num_evals": len(history.steps),
                })
            result = RunResult(
                run_id=run.run_id if run else "",
                status="completed", city=spec.city, seed=spec.seed,
                overrides=dict(spec.overrides), metrics=metrics,
                artifact_dir=artifact_dir)
        except Exception as exc:
            if run is not None:
                run.mark_failed(repr(exc))
                if tracer.enabled:
                    run.write_trace(tracer.to_dict())
            raise
    if run is not None and tracer.enabled:
        run.write_trace(tracer.to_dict())
    return result
