"""Training checkpoints: crash-safe snapshots of a DeepODTrainer.

A checkpoint captures *everything* the training loop reads — model
parameters and buffers, Adam moments and step count, the LR scheduler's
epoch, the shuffle RNG's bit-generator state, the in-flight epoch
permutation and cursor, and the metric history — so a resumed run
continues the exact trajectory of an uninterrupted one, bitwise.

Layout (one directory per snapshot, atomically renamed into place)::

    <checkpoint_dir>/
        step-0000000120/
            arrays.npz     model state + optimiser moments + epoch order
            meta.json      counters, RNG state, scheduler state, history

``save_checkpoint`` keeps the newest ``keep`` snapshots and prunes the
rest; ``load_checkpoint`` accepts either a specific ``step-*`` directory
or the parent directory (then the latest snapshot is used).
"""

from __future__ import annotations

import json
import os
import re
import shutil
from typing import Dict, List, Optional

import numpy as np

from ..nn.serialization import load_arrays, save_arrays

ARRAYS_FILE = "arrays.npz"
META_FILE = "meta.json"

_STEP_DIR = re.compile(r"^step-(\d{10})$")


class CheckpointError(Exception):
    """The checkpoint is missing, malformed, or fails validation."""


def _step_dir_name(step: int) -> str:
    return f"step-{step:010d}"


def list_checkpoints(directory: str) -> List[str]:
    """All snapshot directories under ``directory``, oldest first."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _STEP_DIR.match(name)
        if match and os.path.isdir(os.path.join(directory, name)):
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    return [path for _, path in sorted(found)]


def latest_checkpoint(directory: str) -> Optional[str]:
    """The newest snapshot directory, or ``None`` when there is none."""
    snapshots = list_checkpoints(directory)
    return snapshots[-1] if snapshots else None


# ---------------------------------------------------------------------------
def save_checkpoint(trainer, directory: str, keep: int = 3) -> str:
    """Snapshot ``trainer`` into ``directory``; returns the snapshot path.

    The snapshot is assembled in a hidden temp directory and renamed into
    place, so a crash mid-save can never leave a half-written snapshot
    that a later resume would trust.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    state = trainer.state_dict()
    os.makedirs(directory, exist_ok=True)
    final = os.path.join(directory, _step_dir_name(int(state["step"])))
    tmp = os.path.join(directory, f".tmp-{os.getpid()}-{state['step']}")
    if os.path.isdir(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        arrays: Dict[str, np.ndarray] = {
            "model::" + name: value
            for name, value in state["model"].items()
        }
        opt = state["optimizer"]
        for slot, (m, v) in enumerate(zip(opt["m"], opt["v"])):
            arrays[f"adam_m::{slot}"] = m
            arrays[f"adam_v::{slot}"] = v
        if state["order"] is not None:
            arrays["order"] = np.asarray(state["order"], dtype=np.int64)
        save_arrays(os.path.join(tmp, ARRAYS_FILE), arrays)

        meta = {
            "step": int(state["step"]),
            "epoch": int(state["epoch"]),
            "cursor": int(state["cursor"]),
            "has_order": state["order"] is not None,
            "num_moment_slots": len(opt["m"]),
            "adam_t": int(opt["t"]),
            "adam_lr": float(opt["lr"]),
            "scheduler": state["scheduler"],
            "rng": state["rng"],
            "history": state["history"],
        }
        with open(os.path.join(tmp, META_FILE), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")

        if os.path.isdir(final):
            shutil.rmtree(final)
        os.replace(tmp, final)
    finally:
        if os.path.isdir(tmp):
            shutil.rmtree(tmp)

    for stale in list_checkpoints(directory)[:-keep]:
        shutil.rmtree(stale)
    return final


# ---------------------------------------------------------------------------
def read_checkpoint(path: str) -> Dict[str, object]:
    """Read a snapshot directory back into a trainer state dict."""
    if not os.path.isdir(path):
        raise CheckpointError(f"checkpoint directory not found: {path}")
    meta_path = os.path.join(path, META_FILE)
    if not os.path.exists(meta_path):
        raise CheckpointError(f"missing checkpoint file: {meta_path}")
    try:
        with open(meta_path) as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint meta: {exc}")
    try:
        arrays = load_arrays(os.path.join(path, ARRAYS_FILE))
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint arrays: {exc}")

    try:
        model = {name[len("model::"):]: value
                 for name, value in arrays.items()
                 if name.startswith("model::")}
        slots = int(meta["num_moment_slots"])
        optimizer = {
            "t": int(meta["adam_t"]),
            "lr": float(meta["adam_lr"]),
            "m": [arrays[f"adam_m::{slot}"] for slot in range(slots)],
            "v": [arrays[f"adam_v::{slot}"] for slot in range(slots)],
        }
        return {
            "step": int(meta["step"]),
            "epoch": int(meta["epoch"]),
            "cursor": int(meta["cursor"]),
            "order": arrays["order"] if meta["has_order"] else None,
            "rng": meta["rng"],
            "model": model,
            "optimizer": optimizer,
            "scheduler": meta["scheduler"],
            "history": meta["history"],
        }
    except KeyError as exc:
        raise CheckpointError(f"checkpoint missing field: {exc}")


def load_checkpoint(trainer, path: str) -> int:
    """Restore ``trainer`` from ``path``; returns the restored step.

    ``path`` may be a specific ``step-*`` snapshot or a checkpoint
    directory holding several (the newest is used).
    """
    if os.path.isdir(path) and not _STEP_DIR.match(os.path.basename(path)):
        newest = latest_checkpoint(path)
        if newest is None:
            raise CheckpointError(f"no checkpoints under {path}")
        path = newest
    state = read_checkpoint(path)
    try:
        trainer.load_state_dict(state)
    except (KeyError, ValueError, TypeError) as exc:
        raise CheckpointError(
            f"checkpoint does not fit this trainer "
            f"(model/config mismatch?): {exc}")
    return int(state["step"])
