"""Promotion gate: the offline → online handover, with a quality bar.

A deployment directory holds every artifact version ever promoted plus
a ``current`` symlink the serving layer loads::

    <deploy_root>/
        current -> versions/<name>      (atomic symlink swap)
        versions/<name>/                full artifact copies

``promote`` evaluates the candidate against the currently-deployed
artifact on the *same* held-out test split (the candidate's recorded
dataset) and either installs it — copy, fsync-free but atomic rename,
symlink swap — or refuses with machine-readable reasons.  A worse
candidate can never silently replace a better incumbent, which closes
the continuous train → sweep → promote → serve loop safely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datagen.dataset import TaxiDataset, strip_trajectories
from ..eval.metrics import mae
from ..serving.artifact import ArtifactError, load_artifact, read_manifest

CURRENT_LINK = "current"
VERSIONS_DIR = "versions"


class PromotionError(Exception):
    """The deployment directory is unusable (not a refusal)."""


@dataclass
class PromotionDecision:
    """Outcome of one promotion attempt."""

    promoted: bool
    candidate_dir: str
    candidate_mae: float = float("nan")
    incumbent_mae: Optional[float] = None
    deployed_path: str = ""
    version: str = ""
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
def deployed_artifact_path(deploy_root: str) -> Optional[str]:
    """The artifact directory ``current`` points at, or None."""
    link = os.path.join(deploy_root, CURRENT_LINK)
    if not os.path.exists(link):
        return None
    return os.path.realpath(link)


def heldout_mae(predictor, dataset: TaxiDataset,
                eval_trips: Optional[Sequence] = None) -> float:
    """Held-out error of a loaded predictor: MAE over the test split,
    with trajectories stripped (the online protocol — only OD inputs).

    ``eval_trips`` overrides the evaluation window — the streaming
    continuous-learning loop passes its rolling held-out trips so a
    fine-tuned candidate and the incumbent are both judged on the
    traffic regime actually being served, not the frozen test split.
    """
    test = strip_trajectories(dataset.split.test if eval_trips is None
                              else eval_trips)
    if not test:
        raise PromotionError("dataset has no held-out test trips")
    preds = predictor.trainer.predict(test)
    actual = np.array([t.travel_time for t in test])
    return mae(actual, preds)


def _version_name(candidate_dir: str) -> str:
    """Stable version label: the run id when recorded, else a content
    hash of the manifest."""
    try:
        manifest = read_manifest(candidate_dir)
    except ArtifactError:
        manifest = {}
    provenance = manifest.get("provenance") or {}
    run_id = provenance.get("run_id")
    if run_id:
        return str(run_id)
    blob = repr(sorted(manifest.items())).encode()
    return "candidate-" + hashlib.sha256(blob).hexdigest()[:10]


def _install(candidate_dir: str, deploy_root: str, version: str) -> str:
    """Copy the candidate into versions/ and atomically swap ``current``."""
    versions = os.path.join(deploy_root, VERSIONS_DIR)
    os.makedirs(versions, exist_ok=True)
    final = os.path.join(versions, version)
    tmp = os.path.join(versions, f".tmp-{os.getpid()}-{version}")
    if os.path.isdir(tmp):
        shutil.rmtree(tmp)
    shutil.copytree(candidate_dir, tmp)
    if os.path.isdir(final):
        shutil.rmtree(final)
    os.replace(tmp, final)

    link = os.path.join(deploy_root, CURRENT_LINK)
    if os.path.exists(link) and not os.path.islink(link):
        raise PromotionError(
            f"{link} exists and is not a symlink; refusing to clobber")
    tmp_link = link + f".tmp-{os.getpid()}"
    if os.path.lexists(tmp_link):
        os.remove(tmp_link)
    os.symlink(os.path.join(VERSIONS_DIR, version), tmp_link)
    os.replace(tmp_link, link)
    return final


# ---------------------------------------------------------------------------
def promote(candidate_dir: str, deploy_root: str,
            dataset: Optional[TaxiDataset] = None,
            min_improvement: float = 0.0,
            eval_trips: Optional[Sequence] = None) -> PromotionDecision:
    """Gate and (maybe) deploy a candidate artifact.

    The candidate must load cleanly; its held-out MAE must beat (or tie,
    under ``min_improvement = 0``) the incumbent's on the same data.
    ``dataset`` skips regeneration when the caller already holds the
    evaluation dataset.  ``eval_trips`` swaps the evaluation window (see
    :func:`heldout_mae`) — candidate and incumbent are always compared
    on the *same* trips, whichever window is chosen.  Refusals return
    ``promoted=False`` with the reasons; only a broken deployment
    *directory* raises.
    """
    decision = PromotionDecision(promoted=False,
                                 candidate_dir=candidate_dir)
    try:
        candidate = load_artifact(candidate_dir, dataset=dataset)
    except ArtifactError as exc:
        decision.reasons.append(f"candidate artifact invalid: {exc}")
        return decision
    dataset = candidate.dataset
    decision.candidate_mae = heldout_mae(candidate, dataset,
                                         eval_trips=eval_trips)

    incumbent_path = deployed_artifact_path(deploy_root)
    if incumbent_path is not None:
        try:
            incumbent = load_artifact(incumbent_path, dataset=dataset)
            decision.incumbent_mae = heldout_mae(incumbent, dataset,
                                                 eval_trips=eval_trips)
        except ArtifactError as exc:
            # An unloadable or non-comparable incumbent cannot defend
            # its slot, but the replacement is recorded as such.
            decision.reasons.append(
                f"incumbent not comparable ({exc}); replacing it")

    if decision.incumbent_mae is not None:
        bar = decision.incumbent_mae * (1.0 - min_improvement)
        if decision.candidate_mae > bar:
            decision.reasons.append(
                f"incumbent held-out MAE {decision.incumbent_mae:.3f}s "
                f"beats candidate {decision.candidate_mae:.3f}s "
                f"(required <= {bar:.3f}s)")
            return decision
        decision.reasons.append(
            f"candidate held-out MAE {decision.candidate_mae:.3f}s "
            f"improves on incumbent {decision.incumbent_mae:.3f}s")
    elif not decision.reasons:
        decision.reasons.append("no incumbent deployed; promoting")

    version = _version_name(candidate_dir)
    decision.deployed_path = _install(candidate_dir, deploy_root, version)
    decision.version = version
    decision.promoted = True
    return decision
