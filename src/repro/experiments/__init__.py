"""Experiment orchestration: the offline half of Algorithm 1, at scale.

``repro.serving`` is the online estimation side; this package is its
offline counterpart — the machinery that produces, tracks and ships the
artifacts serving loads:

``checkpoint``
    Crash-safe trainer snapshots; resume is bitwise-identical to an
    uninterrupted run.
``registry``
    Per-run directories with config hashes, dataset fingerprints,
    streamed ``metrics.jsonl`` and final reports — queryable from the
    CLI (``exp list``).
``runner``
    One training run end to end (build → fit → evaluate → artifact).
``executor``
    Declarative sweep grids (overrides × seeds × cities) fanned over
    worker processes, deterministic regardless of worker count.
``promote``
    The offline → online gate: candidate vs deployed artifact on
    held-out data, atomic symlink-swap deployment, refusal with reasons.
"""

from .checkpoint import (
    CheckpointError, latest_checkpoint, list_checkpoints, load_checkpoint,
    read_checkpoint, save_checkpoint,
)
from .executor import (
    SweepPoint, SweepResult, SweepSpec, prebuild_datasets, run_grid,
    run_sweep,
)
from .promote import (
    PromotionDecision, PromotionError, deployed_artifact_path, heldout_mae,
    promote,
)
from .registry import (
    Run, RunRecord, RunRegistry, RegistryError, config_hash, make_run_id,
)
from .runner import RunResult, RunSpec, build_run_dataset, execute_run

__all__ = [
    "CheckpointError", "latest_checkpoint", "list_checkpoints",
    "load_checkpoint", "read_checkpoint", "save_checkpoint",
    "SweepPoint", "SweepResult", "SweepSpec", "prebuild_datasets",
    "run_grid", "run_sweep",
    "PromotionDecision", "PromotionError", "deployed_artifact_path",
    "heldout_mae", "promote",
    "Run", "RunRecord", "RunRegistry", "RegistryError", "config_hash",
    "make_run_id",
    "RunResult", "RunSpec", "build_run_dataset", "execute_run",
]
