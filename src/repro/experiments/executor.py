"""Parallel sweep executor: a declarative grid fanned over processes.

The paper's experiment suite (Fig 9's w-sweep, Table 7's embedding
variants, per-city retrains for Tables 3-6) is embarrassingly parallel:
every point is an independent offline training run.  ``SweepSpec``
declares the grid — config overrides × seeds × cities — and
``run_sweep`` executes it with ``jobs`` worker processes.

Design invariants:

* **Deterministic** — a point's result depends only on its spec (the
  dataset regenerates deterministically from preset parameters), and
  results are returned in grid-expansion order, so ``--jobs 4`` output
  is identical to ``--jobs 1`` in every field except wall-clock timing.
* **Shared datasets** — every dataset a sweep needs is built once in
  the parent before the pool forks; workers inherit it copy-on-write
  instead of regenerating per point.
* **Failure containment** — a point that raises (or takes its worker
  down) is retried once, then recorded as ``failed`` with the error;
  the remaining points are unaffected.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import DeepODConfig
from ..datagen.dataset import TaxiDataset
from ..datagen.pipeline import DatasetSpec, build
from ..obs.metrics import global_registry
from .runner import RunSpec, execute_run

# Dataset cache shared with forked workers (copy-on-write).  Keyed by
# (city, trips, days); populated by ``prebuild_datasets`` in the parent
# so no worker ever rebuilds a dataset the sweep already has.
_DATASET_CACHE: Dict[Tuple[str, int, int], TaxiDataset] = {}


def _cached_dataset(city: str, trips: int, days: int) -> TaxiDataset:
    key = (city, trips, days)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = build(DatasetSpec(
            city, num_trips=trips, num_days=days))
    return _DATASET_CACHE[key]


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a concrete RunSpec plus the overrides that made it."""

    index: int
    spec: RunSpec
    overrides: Dict[str, object]


@dataclass
class SweepSpec:
    """Declarative grid: ``grid`` maps DeepODConfig field names to the
    values to sweep; the cross product with ``seeds`` and ``cities``
    is the set of runs."""

    base_config: DeepODConfig
    grid: Dict[str, Sequence] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    cities: Sequence[str] = ("mini-chengdu",)
    trips: int = 1000
    days: int = 14
    epochs: Optional[int] = None
    eval_every: int = 0
    checkpoint_every: int = 0
    coverage: float = 0.8
    save_artifacts: bool = False

    def expand(self) -> List[SweepPoint]:
        """The grid in canonical order: cities × grid values × seeds.

        Axis order is fixed (grid keys sorted) so the expansion — and
        therefore every point's index and run id — is independent of
        dict insertion order.
        """
        axes = sorted(self.grid)
        value_rows = list(itertools.product(
            *(self.grid[name] for name in axes))) or [()]
        points: List[SweepPoint] = []
        for city in self.cities:
            for row in value_rows:
                overrides = dict(zip(axes, row))
                for seed in self.seeds:
                    points.append(SweepPoint(
                        index=len(points),
                        spec=RunSpec(
                            city=city, config=self.base_config,
                            seed=seed, overrides=overrides,
                            trips=self.trips, days=self.days,
                            epochs=self.epochs,
                            eval_every=self.eval_every,
                            checkpoint_every=self.checkpoint_every,
                            coverage=self.coverage,
                            save_artifact=self.save_artifacts),
                        overrides=overrides))
        return points


@dataclass
class SweepResult:
    """All point results, in grid order, plus failure accounting."""

    results: List[Dict]

    @property
    def completed(self) -> List[Dict]:
        return [r for r in self.results if r["status"] == "completed"]

    @property
    def failed(self) -> List[Dict]:
        return [r for r in self.results if r["status"] == "failed"]

    def best(self, metric: str = "test_mae") -> Optional[Dict]:
        ranked = [r for r in self.completed
                  if r.get("metrics", {}).get(metric) is not None]
        if not ranked:
            return None
        return min(ranked, key=lambda r: r["metrics"][metric])

    def to_json(self, path: str) -> str:
        payload = {
            "num_points": len(self.results),
            "num_completed": len(self.completed),
            "num_failed": len(self.failed),
            "results": self.results,
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


# ---------------------------------------------------------------------------
# Generic fan-out engine (also used by the parallel-speedup benchmark).
def _call_safe(fn: Callable, item) -> Tuple[str, object]:
    try:
        return ("ok", fn(item))
    except Exception as exc:  # noqa: BLE001 — containment is the point
        return ("error", f"{exc!r}\n{traceback.format_exc()}")


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_grid(items: Sequence, fn: Callable, jobs: int = 1,
             retries: int = 1) -> List[Dict]:
    """Apply ``fn`` to every item with ``jobs`` workers.

    Returns one record per item, in input order:
    ``{"index", "status": "completed"|"failed", "value"|"error",
    "attempts"}``.  A failing item (exception, or a crash that takes the
    whole worker pool down) is retried ``retries`` times, then recorded
    as failed; other items always run to completion.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    total = len(items)
    records: List[Optional[Dict]] = [None] * total
    attempts = [0] * total
    pending = list(range(total))

    def settle(index: int, tag: str, payload) -> None:
        attempts[index] += 1
        if tag == "ok":
            records[index] = {"index": index, "status": "completed",
                              "value": payload,
                              "attempts": attempts[index]}
        elif attempts[index] > retries:
            records[index] = {"index": index, "status": "failed",
                              "error": str(payload),
                              "attempts": attempts[index]}
        else:
            pending.append(index)

    if jobs == 1:
        while pending:
            index = pending.pop(0)
            tag, payload = _call_safe(fn, items[index])
            settle(index, tag, payload)
        return [r for r in records if r is not None]

    ctx = _pool_context()
    while pending:
        batch, pending = pending, []
        futures: Dict = {}
        try:
            with ProcessPoolExecutor(max_workers=jobs,
                                     mp_context=ctx) as pool:
                futures = {pool.submit(_call_safe, fn, items[i]): i
                           for i in batch}
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        try:
                            tag, payload = future.result()
                        except Exception as exc:  # worker died hard
                            tag, payload = "error", repr(exc)
                        settle(index, tag, payload)
        except BrokenProcessPool as exc:
            # A worker crash poisons the whole pool: every future that
            # never reported gets a crash attempt, then a fresh pool.
            for future, index in futures.items():
                if records[index] is None and index not in pending:
                    settle(index, "error", f"worker pool broke: {exc!r}")
    return [r for r in records if r is not None]


# ---------------------------------------------------------------------------
def _execute_point(args: Tuple[SweepPoint, Optional[str]]) -> Dict:
    point, registry_root = args
    from .registry import RunRegistry
    registry = RunRegistry(registry_root) if registry_root else None
    dataset = _cached_dataset(point.spec.city, point.spec.trips,
                              point.spec.days)
    result = execute_run(point.spec, registry=registry, dataset=dataset)
    payload = result.to_dict()
    payload["index"] = point.index
    return payload


def prebuild_datasets(points: Sequence[SweepPoint]) -> int:
    """Build every dataset the sweep needs, once, in this process."""
    keys = {(p.spec.city, p.spec.trips, p.spec.days) for p in points}
    for city, trips, days in sorted(keys):
        _cached_dataset(city, trips, days)
    return len(keys)


def run_sweep(spec: SweepSpec, jobs: int = 1,
              registry_root: Optional[str] = None,
              retries: int = 1) -> SweepResult:
    """Execute a full sweep; results come back in grid order."""
    points = spec.expand()
    prebuild_datasets(points)
    raw = run_grid([(p, registry_root) for p in points],
                   _execute_point, jobs=jobs, retries=retries)
    # Sweep accounting lands in the shared observability registry in the
    # parent process — worker processes have their own (discarded) copy.
    metrics = global_registry()
    results: List[Dict] = []
    for record, point in zip(raw, points):
        if record["status"] == "completed":
            payload = record["value"]
            metrics.counter("sweep.points_completed").inc()
            wall = payload.get("metrics", {}).get("wall_seconds")
            if wall is not None:
                metrics.histogram("sweep.point_seconds").observe(
                    float(wall))
        else:
            payload = {"index": point.index, "status": "failed",
                       "city": point.spec.city, "seed": point.spec.seed,
                       "overrides": dict(point.overrides),
                       "metrics": {}, "error": record["error"]}
            metrics.counter("sweep.points_failed").inc()
        payload["attempts"] = record["attempts"]
        results.append(payload)
    return SweepResult(results=results)
