"""Incremental per-cell speed estimation from completed trips.

The taxisim estimator shape (SNIPPETS.md, ``CV_TrafficEstimation``):
average velocity is total distance over total time, i.e. a
*distance-weighted* mean of per-segment speeds, and recent observations
matter more than old ones.  This module keeps that estimate per grid
cell as an exponentially decayed pair of running sums

    W[r, c] = Σ  λ^age · length_i           (weight: metres observed)
    S[r, c] = Σ  λ^age · length_i · speed_i

so ``S / W`` is the decayed distance-weighted mean speed, with ``λ``
chosen from a half-life measured in Δt periods.  Observations are
ingested in vectorised batches (one ``np.add.at`` scatter per touched
period, not one Python loop iteration per path element).

When the event clock completes a period, :meth:`advance_to`
materialises that period's grid — cells below the evidence floor fall
back to the running global mean speed (total distance / total time, the
taxisim ``compute_avg_velocity``) — as a
:class:`~repro.datagen.speed_matrix.SpeedMatrixStore`-compatible slice
ready for :class:`~repro.datagen.speed_matrix.LiveSpeedStore` overlay.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..datagen.speed_matrix import edge_cell_indices
from ..roadnet.graph import RoadNetwork
from ..trajectory.model import TripRecord


class StreamingSpeedEstimator:
    """Rolling per-cell speed state fed by batches of completed trips.

    Parameters
    ----------
    net / base_store:
        The road network and the training-time store whose grid
        geometry (cells, Δt, horizon) the live slices must match.
    half_life_periods:
        After this many Δt periods an observation's weight has halved.
    min_weight_metres:
        Evidence floor per cell: below this many (decayed) observed
        metres a cell reports the global mean instead of its own noisy
        ratio.
    """

    def __init__(self, net: RoadNetwork, base_store,
                 half_life_periods: float = 2.0,
                 min_weight_metres: float = 1.0):
        if half_life_periods <= 0:
            raise ValueError("half_life_periods must be positive")
        if min_weight_metres <= 0:
            raise ValueError("min_weight_metres must be positive")
        self.store = base_store
        self.config = base_store.config
        self.rows, self.cols = base_store.rows, base_store.cols
        self.periods = base_store.periods
        self.decay = float(0.5 ** (1.0 / half_life_periods))
        self.min_weight = float(min_weight_metres)

        self._edge_rows, self._edge_cols = edge_cell_indices(net, base_store)
        self._edge_len = np.array([net.edge(e).length
                                   for e in range(net.num_edges)])

        # Decayed running sums over every published period, plus pending
        # per-period accumulators awaiting their publish tick.
        self._weight = np.zeros((self.rows, self.cols))
        self._wspeed = np.zeros((self.rows, self.cols))
        self._pending: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._next_period = 0

        # Running global average velocity (taxisim compute_avg_velocity).
        self._total_metres = 0.0
        self._total_seconds = 0.0
        self.observations = 0

    # ------------------------------------------------------------------
    @property
    def global_mean_speed(self) -> float:
        """Live distance-over-time mean; training-time mean until the
        first observation arrives."""
        if self._total_seconds <= 0:
            return float(self.store.global_mean_speed)
        return self._total_metres / self._total_seconds

    def observe(self, trips: Sequence[TripRecord]) -> int:
        """Ingest a batch of completed trips; returns the number of
        path-element observations absorbed.

        Vectorised: the batch's path elements are gathered into flat
        arrays, then scattered into per-period pending grids with one
        ``np.add.at`` per touched period.  Late observations (for a
        period already published) fold into the next unpublished period
        rather than being dropped.
        """
        eids: List[int] = []
        durations: List[float] = []
        enters: List[float] = []
        for trip in trips:
            if trip.trajectory is None:
                continue
            for el in trip.trajectory.path:
                if el.duration <= 0:
                    continue
                eids.append(el.edge_id)
                durations.append(el.duration)
                enters.append(el.enter_time)
        if not eids:
            return 0
        eid_arr = np.asarray(eids, dtype=int)
        dur = np.asarray(durations)
        lengths = self._edge_len[eid_arr]
        speeds = lengths / dur
        rows = self._edge_rows[eid_arr]
        cols = self._edge_cols[eid_arr]
        periods = (np.asarray(enters)
                   // self.config.period_seconds).astype(int)
        periods = np.clip(periods, self._next_period, self.periods - 1)

        for period in np.unique(periods):
            mask = periods == period
            pending = self._pending.get(int(period))
            if pending is None:
                pending = (np.zeros((self.rows, self.cols)),
                           np.zeros((self.rows, self.cols)))
                self._pending[int(period)] = pending
            np.add.at(pending[0], (rows[mask], cols[mask]), lengths[mask])
            np.add.at(pending[1], (rows[mask], cols[mask]),
                      lengths[mask] * speeds[mask])

        self._total_metres += float(lengths.sum())
        self._total_seconds += float(dur.sum())
        self.observations += len(eid_arr)
        return len(eid_arr)

    def advance_to(self, t: float) -> List[Tuple[int, np.ndarray]]:
        """Materialise every period completed by event time ``t``.

        Returns ``[(period, matrix), ...]`` for the newly completed
        periods (empty while the clock is still inside the current one).
        Each matrix is the decayed distance-weighted mean speed per
        cell, global-mean-imputed where evidence is thin.  Periods with
        no recent evidence anywhere produce no slice at all — serving
        keeps reading the training-time store for them rather than a
        flat global-mean grid.
        """
        if t < 0:
            raise ValueError("time must be non-negative")
        target = int(t // self.config.period_seconds)
        published: List[Tuple[int, np.ndarray]] = []
        while self._next_period < target and self._next_period < self.periods:
            period = self._next_period
            self._weight *= self.decay
            self._wspeed *= self.decay
            pending = self._pending.pop(period, None)
            if pending is not None:
                self._weight += pending[0]
                self._wspeed += pending[1]
            if float(self._weight.max(initial=0.0)) >= self.min_weight:
                matrix = np.where(
                    self._weight >= self.min_weight,
                    self._wspeed / np.maximum(self._weight, 1e-12),
                    self.global_mean_speed)
                published.append((period, matrix))
            self._next_period += 1
        return published

    @property
    def next_period(self) -> int:
        return self._next_period
