"""TripStream: replay historical trips as a live completion stream.

The dataset's trips are departure-time ordered; what a streaming
consumer sees, though, is each trip *completing* — only then are its
trajectory and travel time known, only then can it update speed state
or be scored against a prediction.  :class:`TripStream` therefore
releases each replayed trip once the injected event clock passes its
arrival time, in arrival order.

The stream is seeded (an optional jitter perturbs release times to
model report latency without touching the trips themselves) and
resumable: ``state_dict``/``load_state_dict`` snapshot the cursor so a
restarted consumer continues exactly where it stopped.

:func:`shift_travel_times` injects a synthetic traffic-regime shift —
every trip departing after a chosen time slows down by a factor (with
seeded per-trip noise) — the workload that drives the drift-detection
and continuous-learning loop end to end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..trajectory.model import (
    MatchedTrajectory, ODInput, PathElement, TripRecord,
)
from .clock import EventClock


def trip_arrival_time(trip: TripRecord) -> float:
    """When a trip completes: trajectory arrival when known, else
    departure + travel time."""
    if trip.trajectory is not None:
        return float(trip.trajectory.arrive_time)
    return float(trip.od.depart_time + trip.travel_time)


class TripStream:
    """Ordered replay of trips, released as the event clock reaches
    each trip's completion time.

    Parameters
    ----------
    trips:
        The records to replay (typically a dataset's validation + test
        tail — the "future" relative to the trained model).
    clock:
        The shared :class:`EventClock`; ``poll()`` releases every
        not-yet-delivered trip whose (jittered) arrival time is
        ``<= clock.now()``.
    seed / report_jitter_s:
        With ``report_jitter_s > 0``, each trip's release time gains a
        seeded uniform delay in ``[0, report_jitter_s]`` — completed
        trips reach the pipeline a little late, as they would from real
        telemetry.  Deterministic for a fixed seed.
    """

    def __init__(self, trips: Sequence[TripRecord], clock: EventClock,
                 seed: int = 0, report_jitter_s: float = 0.0):
        if report_jitter_s < 0:
            raise ValueError("report_jitter_s must be >= 0")
        self.clock = clock
        order = sorted(range(len(trips)),
                       key=lambda i: (trip_arrival_time(trips[i]),
                                      trips[i].od.depart_time, i))
        self._trips: List[TripRecord] = [trips[i] for i in order]
        rng = np.random.default_rng(seed)
        jitter = (rng.uniform(0.0, report_jitter_s, size=len(self._trips))
                  if report_jitter_s > 0 else np.zeros(len(self._trips)))
        self._release = np.array(
            [trip_arrival_time(t) for t in self._trips]) + jitter
        # Jitter can reorder near-simultaneous completions; release
        # times must stay sorted for the cursor to be a prefix.
        resort = np.argsort(self._release, kind="stable")
        self._trips = [self._trips[i] for i in resort]
        self._release = self._release[resort]
        self._cursor = 0

    # ------------------------------------------------------------------
    def poll(self) -> List[TripRecord]:
        """Every trip completed (and reported) by the clock's now."""
        now = self.clock.now()
        released: List[TripRecord] = []
        while (self._cursor < len(self._trips)
               and self._release[self._cursor] <= now):
            released.append(self._trips[self._cursor])
            self._cursor += 1
        return released

    def peek_next_release(self) -> Optional[float]:
        """Release time of the next undelivered trip (None when done)."""
        if self._cursor >= len(self._trips):
            return None
        return float(self._release[self._cursor])

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._trips)

    @property
    def remaining(self) -> int:
        return len(self._trips) - self._cursor

    def __len__(self) -> int:
        return len(self._trips)

    # -- resumability ----------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {"cursor": self._cursor, "clock": self.clock.state_dict()}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        cursor = int(state["cursor"])
        if not 0 <= cursor <= len(self._trips):
            raise ValueError(f"cursor {cursor} outside the stream")
        self._cursor = cursor
        self.clock.load_state_dict(state["clock"])


def shift_travel_times(trips: Sequence[TripRecord], at_time: float,
                       factor: float, seed: int = 0,
                       noise: float = 0.05) -> List[TripRecord]:
    """A synthetic traffic-regime shift: trips departing at or after
    ``at_time`` take ``factor``× as long (times a small seeded log-normal
    per-trip wobble so the shifted regime is not a single constant).

    Durations stretch around the unchanged departure time — path-element
    enter/exit times, the total travel time and the recorded speeds all
    slow down consistently, exactly as a city-wide slowdown would look
    to the speed estimator.  Trips departing before ``at_time`` are
    returned untouched (same objects).
    """
    if factor <= 0:
        raise ValueError("shift factor must be positive")
    rng = np.random.default_rng(seed)
    shifted: List[TripRecord] = []
    for trip in trips:
        depart = trip.od.depart_time
        if depart < at_time:
            shifted.append(trip)
            continue
        f = factor * float(np.exp(rng.normal(0.0, noise))) if noise > 0 \
            else factor
        trajectory = None
        if trip.trajectory is not None:
            path = [PathElement(
                        edge_id=el.edge_id,
                        enter_time=depart + (el.enter_time - depart) * f,
                        exit_time=depart + (el.exit_time - depart) * f)
                    for el in trip.trajectory.path]
            trajectory = MatchedTrajectory(
                path=path,
                ratio_start=trip.trajectory.ratio_start,
                ratio_end=trip.trajectory.ratio_end)
        od = ODInput(
            origin_xy=trip.od.origin_xy,
            destination_xy=trip.od.destination_xy,
            depart_time=trip.od.depart_time,
            origin_edge=trip.od.origin_edge,
            destination_edge=trip.od.destination_edge,
            ratio_start=trip.od.ratio_start,
            ratio_end=trip.od.ratio_end,
            weather=trip.od.weather,
            external=trip.od.external)
        shifted.append(TripRecord(od=od,
                                  travel_time=trip.travel_time * f,
                                  trajectory=trajectory, raw=None))
    return shifted
