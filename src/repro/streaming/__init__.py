"""Live traffic state, drift detection and continuous learning.

The paper's model is trained once on a frozen window of historical
trajectories; real road networks keep moving.  This package closes the
loop for the serving stack in ``repro.serving``:

``clock`` / ``stream``
    An injected, controllable event clock (the whole package is a
    reprolint D003 event-clock zone — no wall-clock reads) and a
    deterministic, resumable replay of trips as a *completion* stream.
``estimator``
    Incremental distance-weighted, exponentially decayed per-cell speed
    estimation (the taxisim average-velocity shape), materialising
    SpeedMatrixStore-compatible slices per completed period.
``feed``
    Fan-out of fresh slices into serving — in-process overlay on a
    :class:`TravelTimeService`, worker broadcast on a
    :class:`ServingCluster` — with versioned cache invalidation.
``drift``
    Rolling-MAE drift detection on served-vs-actual travel times,
    exported through ``repro.obs.metrics`` gauges.
``learner``
    Fine-tune the *deployed* artifact on the recent window and submit
    the candidate to the promotion gate, judged on the same rolling
    held-out trips as the incumbent.
``controller``
    The batch loop wiring all of it together behind one ``run()``
    (surfaced as ``python -m repro.cli stream``).
"""

from .clock import EventClock
from .controller import StreamingConfig, StreamingController
from .drift import DriftDetector
from .estimator import StreamingSpeedEstimator
from .feed import LiveSpeedFeed
from .learner import ContinuousLearner
from .stream import TripStream, shift_travel_times, trip_arrival_time

__all__ = [
    "EventClock",
    "StreamingConfig", "StreamingController",
    "DriftDetector",
    "StreamingSpeedEstimator",
    "LiveSpeedFeed",
    "ContinuousLearner",
    "TripStream", "shift_travel_times", "trip_arrival_time",
]
