"""LiveSpeedFeed: push freshly estimated speed slices into serving.

The estimator produces SpeedMatrixStore-shaped period slices; serving
consumes them through one of two doors, duck-typed per target:

* a :class:`~repro.serving.service.TravelTimeService` exposes
  ``apply_live_speeds`` (in-process overlay + versioned cache
  invalidation);
* a :class:`~repro.serving.cluster.ServingCluster` exposes
  ``publish_speeds`` (fan-out to every worker over the control pipe).

A feed can carry several targets at once — e.g. a local service used
for scoring plus the cluster actually serving traffic — and keeps
publish accounting in the shared metrics registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..obs.metrics import MetricsRegistry, global_registry


class LiveSpeedFeed:
    """Fan freshly completed speed slices out to serving targets."""

    def __init__(self, targets: Optional[List[object]] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.targets: List[object] = list(targets or [])
        self.metrics = metrics if metrics is not None else global_registry()
        self.published_slices = 0

    def add_target(self, target: object) -> None:
        if not (hasattr(target, "apply_live_speeds")
                or hasattr(target, "publish_speeds")):
            raise TypeError(
                "feed target must expose apply_live_speeds (service) "
                "or publish_speeds (cluster)")
        self.targets.append(target)

    def publish(self, slices: Dict[int, np.ndarray]) -> int:
        """Push ``{period: matrix}`` to every target; returns the number
        of slices delivered (slices × targets)."""
        if not slices:
            return 0
        delivered = 0
        for target in self.targets:
            if hasattr(target, "publish_speeds"):
                delivered += int(target.publish_speeds(slices) or 0)
            else:
                delivered += int(target.apply_live_speeds(slices) or 0)
        self.published_slices += len(slices)
        self.metrics.counter("stream.feed.publishes").inc(len(slices))
        return delivered
