"""Continuous learning: fine-tune the deployed model on the drifted
regime, behind the promotion gate.

When the drift detector fires, :class:`ContinuousLearner` takes the
*deployed* artifact (the incumbent is the checkpoint fine-tuning starts
from), trains it for a few epochs on the recent trip window, recalibrates
its confidence bands, and hands the candidate to
:func:`repro.experiments.promote.promote` — evaluated against the
incumbent on the *same rolling held-out window*, i.e. on the traffic
regime actually being served.  Only a promoted candidate ever reaches
workers, via the deployment directory's ``current`` symlink hot swap.

Fingerprint discipline: the fine-tune itself runs against a *view* of
the dataset whose splits are the recent window (so target normalisation
re-anchors to the shifted regime and calibration uses recent trips),
but the saved artifact is bound to the ORIGINAL dataset — its recorded
fingerprint stays valid, so workers' fail-closed ``load_artifact``
revalidation accepts the swap.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Sequence

from ..core.predictor import TravelTimePredictor
from ..core.trainer import DeepODTrainer
from ..datagen.dataset import DatasetSplit, TaxiDataset
from ..experiments.checkpoint import (latest_checkpoint,
                                      load_checkpoint, save_checkpoint)
from ..experiments.promote import (
    PromotionDecision, deployed_artifact_path, promote,
)
from ..obs.instrument import Instrumented
from ..obs.metrics import MetricsRegistry, global_registry
from ..obs.tracing import Tracer
from ..serving.artifact import load_artifact, save_artifact
from ..trajectory.model import TripRecord


class ContinuousLearner(Instrumented):
    """Fine-tune-and-promote pipeline bound to one deployment root.

    Parameters
    ----------
    dataset:
        The original training dataset (artifact fingerprints are minted
        against it; fine-tune views are derived from it).
    deploy_root:
        The promotion gate's deployment directory; the ``current``
        symlink names both the fine-tune starting point and the swap
        target.
    workdir:
        Where candidate artifacts (and optional fine-tune checkpoints)
        are written before promotion.
    fine_tune_epochs / min_improvement:
        Epochs over the recent window per fine-tune, and the promotion
        gate's required relative improvement.
    checkpoint_every:
        When > 0, the fine-tune loop writes resumable training
        checkpoints into ``<workdir>/<tag>/ckpt`` every that-many steps
        and resumes from the latest one if the previous attempt for the
        same tag died mid-run.
    """

    def __init__(self, dataset: TaxiDataset, deploy_root: str,
                 workdir: str, coverage: float = 0.8,
                 fine_tune_epochs: int = 1,
                 min_improvement: float = 0.0,
                 checkpoint_every: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if fine_tune_epochs < 1:
            raise ValueError("fine_tune_epochs must be >= 1")
        self.dataset = dataset
        self.deploy_root = deploy_root
        self.workdir = workdir
        self.coverage = coverage
        self.fine_tune_epochs = fine_tune_epochs
        self.min_improvement = min_improvement
        self.checkpoint_every = checkpoint_every
        self.metrics = metrics if metrics is not None else global_registry()
        self.tracer = tracer

    # ------------------------------------------------------------------
    def _view(self, train: Sequence[TripRecord],
              holdout: Sequence[TripRecord]) -> TaxiDataset:
        """The original dataset with its splits replaced by the recent
        window — everything else (network, speed store, weather, slot
        config) is shared, so no copies of the heavy state are made."""
        return dataclasses.replace(
            self.dataset,
            split=DatasetSplit(train=list(train),
                               validation=list(holdout),
                               test=list(holdout)))

    def fine_tune_and_promote(self, train: Sequence[TripRecord],
                              holdout: Sequence[TripRecord],
                              tag: str) -> PromotionDecision:
        """One continuous-learning round; returns the gate's decision.

        ``train`` / ``holdout`` are the recent completed trips (holdout
        never trains — it is the evaluation window ``promote`` judges
        BOTH candidate and incumbent on).  ``tag`` names the candidate
        directory and its provenance entry.
        """
        incumbent_path = deployed_artifact_path(self.deploy_root)
        if incumbent_path is None:
            raise ValueError(
                "no deployed incumbent to fine-tune from "
                f"(deploy root: {self.deploy_root})")
        if not train or not holdout:
            raise ValueError("fine-tune needs non-empty train and holdout")
        self.metrics.counter("stream.finetune.runs").inc()

        with self.tracer.span("stream.finetune", tag=tag,
                              train=len(train), holdout=len(holdout)):
            # A fresh copy of the deployed weights — fine-tuning must
            # not mutate any live predictor sharing the incumbent model.
            start = load_artifact(incumbent_path, dataset=self.dataset)
            model = start.trainer.model

            view = self._view(train, holdout)
            trainer = DeepODTrainer(model, view, eval_every=0,
                                    tracer=self.tracer,
                                    metrics=self.metrics)
            ckpt_dir = None
            if self.checkpoint_every > 0:
                ckpt_dir = os.path.join(self.workdir, tag, "ckpt")
                os.makedirs(ckpt_dir, exist_ok=True)
                resume = latest_checkpoint(ckpt_dir)
                if resume is not None:
                    load_checkpoint(trainer, resume)
            trainer.fit(epochs=self.fine_tune_epochs,
                        track_validation=False,
                        checkpoint_every=self.checkpoint_every,
                        checkpoint_dir=ckpt_dir,
                        checkpoint_fn=save_checkpoint)

            # Calibrate bands on the recent holdout (the view's
            # validation split), then rebind the artifact trainer to the
            # ORIGINAL dataset so the saved fingerprint stays valid.
            calibrated = TravelTimePredictor(trainer, self.coverage)
            quantiles = calibrated.quantiles
            tuned_state = model.state_dict()
            artifact_trainer = DeepODTrainer(model, self.dataset,
                                             eval_every=0,
                                             metrics=self.metrics)
            # Rebinding recomputed target stats from the original train
            # split; the fine-tuned model's own stats must win.
            model.load_state_dict(tuned_state)
            candidate = TravelTimePredictor(artifact_trainer, self.coverage,
                                            quantiles=quantiles)
            candidate_dir = os.path.join(self.workdir, tag, "artifact")
            save_artifact(candidate_dir, candidate, extra_manifest={
                "fine_tuned_from": os.path.basename(incumbent_path),
                "fine_tune_tag": tag,
                "fine_tune_trips": len(train),
            })

            decision = promote(candidate_dir, self.deploy_root,
                               dataset=self.dataset,
                               min_improvement=self.min_improvement,
                               eval_trips=list(holdout))
        if decision.promoted:
            self.metrics.counter("stream.finetune.promotions").inc()
        else:
            self.metrics.counter("stream.finetune.rejections").inc()
        return decision
