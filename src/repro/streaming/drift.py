"""Drift detection on the served-accuracy signal.

Every completed trip yields a free label: the served estimate (made at
departure, through the real front door) versus the travel time the trip
actually took.  The detector keeps a rolling window of those absolute
errors; the first full window arms a *baseline* MAE, and when the
rolling MAE exceeds ``ratio_threshold`` × baseline the regime has
drifted — the signal the continuous-learning loop fine-tunes on.

State is exported continuously through ``repro.obs.metrics`` gauges
(``stream.drift.rolling_mae`` / ``baseline_mae`` / ``ratio``) and a
``stream.drift.triggers`` counter, so a dashboard sees the drift build
before the trigger fires.  After a promotion the caller ``rebase()``s:
the new model defines a new baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from ..obs.metrics import MetricsRegistry, global_registry


class DriftDetector:
    """Rolling-MAE drift detector over (predicted, actual) pairs.

    Parameters
    ----------
    window:
        Number of scored trips in the rolling window; the baseline arms
        once the first ``window`` observations have arrived.
    ratio_threshold:
        Drift fires when ``rolling_mae > ratio_threshold * baseline_mae``
        (with an armed baseline).
    """

    def __init__(self, window: int = 50, ratio_threshold: float = 1.5,
                 metrics: Optional[MetricsRegistry] = None):
        if window < 2:
            raise ValueError("window must be >= 2")
        if ratio_threshold <= 1.0:
            raise ValueError("ratio_threshold must exceed 1.0")
        self.window = window
        self.ratio_threshold = float(ratio_threshold)
        self._errors: deque = deque(maxlen=window)
        self._error_sum = 0.0
        self.baseline_mae: Optional[float] = None
        self.scored = 0
        self.metrics = metrics if metrics is not None else global_registry()
        self.metrics.register_gauge("stream.drift.rolling_mae",
                                    lambda: self.rolling_mae or 0.0)
        self.metrics.register_gauge("stream.drift.baseline_mae",
                                    lambda: self.baseline_mae or 0.0)
        self.metrics.register_gauge("stream.drift.ratio",
                                    lambda: self.ratio or 0.0)

    # ------------------------------------------------------------------
    def observe(self, predicted: float, actual: float) -> None:
        """Score one served trip against its realised travel time."""
        error = abs(float(predicted) - float(actual))
        if len(self._errors) == self.window:
            self._error_sum -= self._errors[0]
        self._errors.append(error)
        self._error_sum += error
        self.scored += 1
        if self.baseline_mae is None and len(self._errors) == self.window:
            self.baseline_mae = self.rolling_mae

    @property
    def armed(self) -> bool:
        return self.baseline_mae is not None

    @property
    def rolling_mae(self) -> Optional[float]:
        if not self._errors:
            return None
        return self._error_sum / len(self._errors)

    @property
    def ratio(self) -> Optional[float]:
        """Rolling / baseline MAE, the quantity the threshold tests."""
        if self.baseline_mae is None or self.baseline_mae <= 0:
            return None
        return self.rolling_mae / self.baseline_mae

    def drifted(self) -> bool:
        """True when the armed baseline is exceeded by the threshold
        ratio; increments ``stream.drift.triggers`` on each True."""
        ratio = self.ratio
        fired = ratio is not None and ratio > self.ratio_threshold
        if fired:
            self.metrics.counter("stream.drift.triggers").inc()
        return fired

    def rebase(self) -> None:
        """Adopt the current rolling window as the new baseline (after a
        model swap the new model defines normal)."""
        if self._errors:
            self.baseline_mae = self.rolling_mae

    def snapshot(self) -> Dict[str, object]:
        return {
            "scored": self.scored,
            "window": len(self._errors),
            "rolling_mae": self.rolling_mae,
            "baseline_mae": self.baseline_mae,
            "ratio": self.ratio,
        }
