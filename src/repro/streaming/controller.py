"""StreamingController: the closed loop tying the subsystem together.

Each :meth:`step` is one batch tick of event time::

    advance clock → poll completed trips → query the serving front door
    (the estimate a rider would have been given at departure) → score
    served vs actual into the drift detector → feed the trips to the
    speed estimator → publish completed speed slices to serving →
    maybe fine-tune-and-promote → maybe hot-swap

Everything downstream of the clock is deterministic for a fixed seed:
the stream release order, the estimator's slices, the drift trigger
batch, the fine-tuned candidate and the promotion decision.  The
controller never reads wall-clock time (reprolint D003 enforces this
for the whole package).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..datagen.dataset import TaxiDataset
from ..experiments.promote import deployed_artifact_path
from ..obs.instrument import Instrumented
from ..obs.metrics import MetricsRegistry, global_registry
from ..obs.tracing import Tracer
from ..serving.artifact import load_artifact
from ..trajectory.model import Query, TripRecord
from .clock import EventClock
from .drift import DriftDetector
from .estimator import StreamingSpeedEstimator
from .feed import LiveSpeedFeed
from .learner import ContinuousLearner
from .stream import TripStream


@dataclass
class StreamingConfig:
    """Knobs of the streaming loop.

    ``batch_seconds`` is the tick length in *event* time.  The drift
    window/ratio parameterise :class:`DriftDetector`; after a fine-tune
    attempt the loop holds off for ``cooldown_batches`` ticks before it
    will consider another.  ``recent_window`` bounds the completed-trip
    buffer fine-tuning draws from, split ``holdout_fraction`` (most
    recent trips) for evaluation vs the rest for training.
    """

    batch_seconds: float = 60.0
    drift_window: int = 50
    drift_ratio: float = 1.5
    cooldown_batches: int = 10
    recent_window: int = 400
    min_fine_tune_trips: int = 24
    holdout_fraction: float = 0.25
    fine_tune_epochs: int = 1
    min_improvement: float = 0.0
    half_life_periods: float = 2.0
    report_jitter_s: float = 0.0

    def __post_init__(self):
        if self.batch_seconds <= 0:
            raise ValueError("batch_seconds must be positive")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.min_fine_tune_trips < 2:
            raise ValueError("min_fine_tune_trips must be >= 2")
        if self.recent_window < self.min_fine_tune_trips:
            raise ValueError("recent_window must cover min_fine_tune_trips")


class StreamingController(Instrumented):
    """Drive the live loop against a serving target.

    Parameters
    ----------
    dataset / trips:
        The training dataset (grid geometry, fine-tune base) and the
        trips to replay — typically the chronological tail the deployed
        model has never trained on, optionally regime-shifted via
        :func:`repro.streaming.stream.shift_travel_times`.
    target:
        The serving front door — a :class:`TravelTimeService` or a
        :class:`ServingCluster`; must expose ``query_batch``.  Slices
        flow to it through :class:`LiveSpeedFeed`; promotions reach a
        cluster via its own symlink watch (``health`` completes swaps)
        and a bare service via ``swap_predictor``.
    deploy_root / workdir:
        Enable continuous learning: the promotion gate's deployment
        directory and a scratch dir for candidates.  Omit both to run
        observe-only (drift gauges still export, nothing retrains).
    """

    def __init__(self, dataset: TaxiDataset,
                 trips: Sequence[TripRecord], target,
                 deploy_root: Optional[str] = None,
                 workdir: Optional[str] = None,
                 config: Optional[StreamingConfig] = None,
                 clock: Optional[EventClock] = None, seed: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if not hasattr(target, "query_batch"):
            raise TypeError("serving target must expose query_batch")
        if (deploy_root is None) != (workdir is None):
            raise ValueError("deploy_root and workdir go together")
        self.dataset = dataset
        self.target = target
        self.deploy_root = deploy_root
        self.config = config or StreamingConfig()
        self.metrics = metrics if metrics is not None else global_registry()
        self.tracer = tracer

        cfg = self.config
        start = min((t.od.depart_time for t in trips), default=0.0)
        self.clock = clock if clock is not None else EventClock(start)
        self.stream = TripStream(trips, self.clock, seed=seed,
                                 report_jitter_s=cfg.report_jitter_s)
        self.estimator = StreamingSpeedEstimator(
            dataset.net, dataset.speed_store,
            half_life_periods=cfg.half_life_periods)
        # Periods wholly before the stream start are never observed;
        # skip straight to the live frontier instead of publishing
        # global-mean slices for the dead past.
        self.estimator.advance_to(self.clock.now())
        self.feed = LiveSpeedFeed([target], metrics=self.metrics)
        self.detector = DriftDetector(window=cfg.drift_window,
                                      ratio_threshold=cfg.drift_ratio,
                                      metrics=self.metrics)
        self.learner: Optional[ContinuousLearner] = None
        if deploy_root is not None:
            self.learner = ContinuousLearner(
                dataset, deploy_root, workdir,
                fine_tune_epochs=cfg.fine_tune_epochs,
                min_improvement=cfg.min_improvement,
                metrics=self.metrics, tracer=tracer)

        self._recent: deque = deque(maxlen=cfg.recent_window)
        self._cooldown = 0
        self.batches = 0
        self.served = 0
        self.dropped = 0
        self.drift_batches: List[int] = []
        self.promotions: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def step(self) -> Dict[str, object]:
        """One batch tick; returns a summary of what happened in it."""
        cfg = self.config
        self.clock.advance(cfg.batch_seconds)
        batch = self.stream.poll()
        event: Dict[str, object] = {
            "batch": self.batches, "event_time": self.clock.now(),
            "completed_trips": len(batch),
        }
        with self.tracer.span("stream.step", batch=self.batches,
                              trips=len(batch)):
            if batch:
                self._score_batch(batch, event)
                self._recent.extend(batch)
                self.estimator.observe(batch)
            slices = self.estimator.advance_to(self.clock.now())
            if slices:
                event["published_periods"] = [p for p, _ in slices]
                self.feed.publish(dict(slices))
            self._cooldown = max(0, self._cooldown - 1)
            if self._cooldown == 0 and self.detector.drifted():
                event["drift"] = True
                self.drift_batches.append(self.batches)
                if (self.learner is not None
                        and len(self._recent) >= cfg.min_fine_tune_trips):
                    event["promotion"] = self._fine_tune()
                self._cooldown = cfg.cooldown_batches
        self.batches += 1
        self.metrics.counter("stream.batches").inc()
        return event

    def _score_batch(self, batch: List[TripRecord],
                     event: Dict[str, object]) -> None:
        """Ask serving for the estimate each completed trip *would* have
        received at departure, and score it against the realised time."""
        queries = [Query(origin_xy=t.od.origin_xy,
                         destination_xy=t.od.destination_xy,
                         depart_time=t.od.depart_time) for t in batch]
        try:
            responses = self.target.query_batch(queries)
        except Exception as exc:
            self.dropped += len(batch)
            self.metrics.counter("stream.dropped").inc(len(batch))
            event["dropped"] = len(batch)
            event["error"] = f"{type(exc).__name__}: {exc}"
            return
        for trip, response in zip(batch, responses):
            self.detector.observe(response.seconds, trip.travel_time)
        self.served += len(batch)
        self.metrics.counter("stream.served").inc(len(batch))

    def _fine_tune(self) -> Dict[str, object]:
        """One continuous-learning round off the recent window."""
        recent = list(self._recent)
        n_holdout = max(1, int(len(recent) * self.config.holdout_fraction))
        train, holdout = recent[:-n_holdout], recent[-n_holdout:]
        tag = f"ft-b{self.batches:05d}"
        decision = self.learner.fine_tune_and_promote(train, holdout, tag)
        record: Dict[str, object] = {
            "tag": tag, "batch": self.batches,
            "promoted": decision.promoted,
            "version": decision.version,
            "candidate_mae": decision.candidate_mae,
            "incumbent_mae": decision.incumbent_mae,
            "pre_swap_rolling_mae": self.detector.rolling_mae,
        }
        if decision.promoted:
            self._activate_deployment()
            self.detector.rebase()
            self.promotions.append(record)
        return record

    def _activate_deployment(self) -> None:
        """Make the target actually serve the freshly promoted model."""
        if hasattr(self.target, "health"):
            # Cluster workers watch the ``current`` symlink themselves;
            # a health ping deterministically completes the swap on
            # every shard before the next batch is scored.
            self.target.health()
        elif hasattr(self.target, "swap_predictor"):
            deployed = deployed_artifact_path(self.deploy_root)
            predictor = load_artifact(deployed, dataset=self.dataset)
            self.target.swap_predictor(predictor)

    # ------------------------------------------------------------------
    def run(self, max_batches: Optional[int] = None) -> Dict[str, object]:
        """Drive ticks until the stream drains (or ``max_batches``);
        returns the final :meth:`report`."""
        while not self.stream.exhausted and (
                max_batches is None or self.batches < max_batches):
            self.step()
        return self.report()

    def report(self) -> Dict[str, object]:
        """Stable summary of the run (deterministic for a fixed seed)."""
        return {
            "batches": self.batches,
            "stream_total": len(self.stream),
            "served": self.served,
            "dropped": self.dropped,
            "scored": self.detector.scored,
            "drift_batches": list(self.drift_batches),
            "promotions": [dict(p) for p in self.promotions],
            "published_slices": self.feed.published_slices,
            "observations": self.estimator.observations,
            "baseline_mae": self.detector.baseline_mae,
            "final_rolling_mae": self.detector.rolling_mae,
        }
