"""The injected event clock every streaming component shares.

Streaming code must never read the wall clock: replays have to be
deterministic (same seed → same batches, same drift trigger, same
promoted artifact), and tests have to fast-forward hours of simulated
traffic in milliseconds.  reprolint's D003 rule enforces this — the
whole ``repro.streaming`` package is an *event-clock zone* where even
``time.monotonic``/``time.perf_counter`` are flagged; time only enters
through an :class:`EventClock` owned by the caller.
"""

from __future__ import annotations


class EventClock:
    """A controllable, monotonic event-time clock (simulated seconds).

    The owner advances it explicitly; everything downstream — the trip
    stream's release gate, the estimator's period boundaries, the
    controller's batch cadence — reads ``now()``.  Monotonicity is
    enforced so a replayed stream can never observe time running
    backwards.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock must start at a non-negative time")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance by a negative duration")
        self._now += float(seconds)
        return self._now

    def set(self, t: float) -> float:
        """Jump to an absolute time (must not move backwards)."""
        t = float(t)
        if t < self._now:
            raise ValueError(
                f"clock cannot move backwards ({t} < {self._now})")
        self._now = t
        return self._now

    def state_dict(self) -> dict:
        return {"now": self._now}

    def load_state_dict(self, state: dict) -> None:
        self._now = float(state["now"])

    def __repr__(self) -> str:
        return f"EventClock(t={self._now:.1f}s)"
