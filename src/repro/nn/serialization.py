"""Saving, loading and sizing models.

Table 5 of the paper compares methods by ``model size(Byte)``, i.e. the
memory footprint required to apply a trained model.  For neural models that
is the parameter (+ buffer) byte count; :func:`state_dict_bytes` computes it
from a saved state.  Models are persisted as ``.npz`` archives so no pickle
security surface is introduced.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .modules import Module


def save_state(module: Module, path: str) -> str:
    """Serialise ``module.state_dict()`` into a compressed ``.npz`` file.

    Returns the path actually written: ``np.savez_compressed`` silently
    appends ``.npz`` when the given path lacks the suffix, so callers that
    echo the filename must use the return value, not their argument.
    """
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)
    return path if path.endswith(".npz") else path + ".npz"


def load_state(module: Module, path: str) -> None:
    """Restore a module from :func:`save_state` output."""
    with np.load(path if path.endswith(".npz") else path + ".npz") as data:
        state: Dict[str, np.ndarray] = {key: data[key] for key in data.files}
    module.load_state_dict(state)


def save_arrays(path: str, arrays: Dict[str, np.ndarray]) -> str:
    """Persist an arbitrary named-array bundle as an ``.npz`` archive.

    Unlike :func:`save_state` this is not tied to a Module — training
    checkpoints use it to store optimiser moments and shuffle state next
    to the model weights.  The write is atomic (temp file + rename) so a
    crash mid-save never leaves a truncated archive behind.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + f".tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return path


def load_arrays(path: str) -> Dict[str, np.ndarray]:
    """Load a :func:`save_arrays` bundle back into a dict."""
    with np.load(path if path.endswith(".npz") else path + ".npz") as data:
        return {key: data[key] for key in data.files}


def state_dict_bytes(state: Dict[str, np.ndarray],
                     bytes_per_element: int = 4) -> int:
    """Size in bytes of a state dict at the given storage precision."""
    return sum(bytes_per_element * np.asarray(v).size for v in state.values())


def parameter_count(module: Module) -> int:
    return module.num_parameters()
