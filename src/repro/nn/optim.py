"""Optimisers and learning-rate schedules.

The paper trains with Adam [Kingma & Ba 2014], mini-batch 1024, initial
learning rate 0.01 reduced by a factor of 5 every 2 epochs (Section 6.1).
:class:`Adam` and :class:`StepDecay` implement exactly that recipe; SGD is
provided for the LR baseline and ablations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .modules import Parameter


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Algorithm 1's AdamOpt)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0,
                 clip_norm: Optional[float] = None):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        # Moment buffers live in one flat array; the per-parameter lists
        # hold reshaped views into it, so per-slot checkpoint IO is
        # unchanged while `step` can run a single vectorised update for
        # the whole model instead of ~10 numpy ops per parameter.
        self._spans: List[tuple] = []
        offset = 0
        for p in self.params:
            self._spans.append((offset, p.data.size))
            offset += p.data.size
        self._dtype = np.result_type(*[p.data.dtype for p in self.params])
        self._flat_m = np.zeros(offset, dtype=self._dtype)
        self._flat_v = np.zeros(offset, dtype=self._dtype)
        self._flat_g = np.empty(offset, dtype=self._dtype)
        self._m = [self._flat_m[o:o + s].reshape(p.data.shape)
                   for p, (o, s) in zip(self.params, self._spans)]
        self._v = [self._flat_v[o:o + s].reshape(p.data.shape)
                   for p, (o, s) in zip(self.params, self._spans)]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        grads = [p.grad for p in self.params]
        if all(g is not None for g in grads):
            return self._step_flat(grads)
        if self.clip_norm is not None:
            self._clip_gradients()
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_flat(self, grads: List[np.ndarray]) -> None:
        """One vectorised Adam update over the concatenated gradient.

        Elementwise identical to the per-parameter loop (same op order
        per element), so either path continues the same trajectory.
        """
        fg = self._flat_g
        for grad, (o, s) in zip(grads, self._spans):
            fg[o:o + s] = grad.reshape(s)
        if self.clip_norm is not None:
            norm = np.sqrt(fg @ fg)
            if norm > self.clip_norm and norm > 0:
                fg *= self.clip_norm / norm
        if self.weight_decay:
            for param, (o, s) in zip(self.params, self._spans):
                fg[o:o + s] += self.weight_decay * param.data.reshape(s)
        m, v = self._flat_m, self._flat_v
        m *= self.beta1
        m += (1.0 - self.beta1) * fg
        v *= self.beta2
        fg *= fg
        v += (1.0 - self.beta2) * fg
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        update = m / bias1
        denom = np.sqrt(v / bias2)
        denom += self.eps
        update /= denom
        update *= self.lr
        for param, (o, s) in zip(self.params, self._spans):
            param.data = param.data - update[o:o + s].reshape(
                param.data.shape)

    def _clip_gradients(self) -> None:
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad ** 2))
        norm = np.sqrt(total)
        if norm > self.clip_norm and norm > 0:
            scale = self.clip_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad = param.grad * scale

    # -- checkpoint state ----------------------------------------------
    def state_dict(self) -> dict:
        """Full optimiser state: moments, step count and current lr.

        Moment arrays are keyed by parameter position (the parameter list
        order is the model's ``named_parameters`` order, which is
        deterministic), so a resumed run continues the exact Adam
        trajectory of an uninterrupted one.
        """
        return {
            "t": self._t,
            "lr": self.lr,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.params) or \
                len(state["v"]) != len(self.params):
            raise ValueError(
                f"optimizer state holds {len(state['m'])} moment arrays "
                f"for {len(self.params)} parameters")
        for slot, (m, v) in enumerate(zip(state["m"], state["v"])):
            if m.shape != self.params[slot].data.shape:
                raise ValueError(
                    f"moment shape mismatch at slot {slot}: "
                    f"{m.shape} vs {self.params[slot].data.shape}")
        self._t = int(state["t"])
        self.lr = float(state["lr"])
        # Copy into the flat-buffer views so the vectorised step keeps
        # seeing the restored moments.
        for slot, (m, v) in enumerate(zip(state["m"], state["v"])):
            self._m[slot][...] = m
            self._v[slot][...] = v


class StepDecay:
    """Divide the learning rate by ``factor`` every ``step_epochs`` epochs.

    The paper's schedule: initial 0.01, reduced by 1/5 every 2 epochs.
    """

    def __init__(self, optimizer: Optimizer, step_epochs: int = 2,
                 factor: float = 5.0):
        if step_epochs < 1:
            raise ValueError("step_epochs must be >= 1")
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        self.optimizer = optimizer
        self.step_epochs = step_epochs
        self.factor = factor
        self._initial_lr = optimizer.lr
        self._epoch = 0

    def epoch_end(self) -> float:
        """Advance one epoch; returns the learning rate now in effect."""
        self._epoch += 1
        drops = self._epoch // self.step_epochs
        self.optimizer.lr = self._initial_lr / (self.factor ** drops)
        return self.optimizer.lr

    def state_dict(self) -> dict:
        return {"epoch": self._epoch, "initial_lr": self._initial_lr}

    def load_state_dict(self, state: dict) -> None:
        self._epoch = int(state["epoch"])
        self._initial_lr = float(state["initial_lr"])
        drops = self._epoch // self.step_epochs
        self.optimizer.lr = self._initial_lr / (self.factor ** drops)


class RMSProp(Optimizer):
    """RMSProp — kept for optimiser ablations of the training recipe."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 alpha: float = 0.99, eps: float = 1e-8):
        super().__init__(params, lr)
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, sq in zip(self.params, self._sq):
            if param.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * param.grad ** 2
            param.data = param.data - self.lr * param.grad / (
                np.sqrt(sq) + self.eps)


class AdaGrad(Optimizer):
    """AdaGrad — historical-accumulation adaptive method."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 eps: float = 1e-10):
        super().__init__(params, lr)
        self.eps = eps
        self._acc = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, acc in zip(self.params, self._acc):
            if param.grad is None:
                continue
            acc += param.grad ** 2
            param.data = param.data - self.lr * param.grad / (
                np.sqrt(acc) + self.eps)


class CosineDecay:
    """Cosine learning-rate annealing over a fixed number of epochs."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._initial_lr = optimizer.lr
        self._epoch = 0

    def epoch_end(self) -> float:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (
            self._initial_lr - self.min_lr) * (1 + np.cos(np.pi * progress))
        return self.optimizer.lr


class EarlyStopping:
    """Patience-based early stopping on a monitored metric (lower=better).

    The trainer consults :meth:`should_stop` after each validation
    evaluation; :attr:`best_state` holds a snapshot of the best weights.
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best: float = np.inf
        self.best_state: Optional[dict] = None
        self._bad_evals = 0

    def update(self, metric: float, module: Optional["object"] = None
               ) -> bool:
        """Record a new metric value; returns True when it improved."""
        if metric < self.best - self.min_delta:
            self.best = metric
            self._bad_evals = 0
            if module is not None:
                self.best_state = module.state_dict()
            return True
        self._bad_evals += 1
        return False

    def should_stop(self) -> bool:
        return self._bad_evals >= self.patience
