"""The fused ``nn`` engine: batched sequence kernels for the hot path.

This module is the training/inference counterpart of the embedding
engine split (``repro.embedding``): every kernel here has a scalar /
per-op twin that stays behind as a reference oracle, and the engine is
selected per model via ``DeepODConfig.nn_engine`` (``"fast"`` |
``"reference"``, default fast) or the ``REPRO_NN_ENGINE`` environment
variable.

What "fused" means here:

* ``lstm_sequence_fused`` / ``gru_sequence_fused`` run a whole padded
  (batch, time, features) batch through the recurrence as a *single*
  autograd node.  The input projection for all timesteps is one
  ``(B·T, G)`` GEMM, the per-step work is pure numpy on preallocated
  saved-activation buffers, and the backward is hand-written
  backpropagation-through-time — no per-step Tensor graph, no per-step
  mask Tensor allocations (length masking uses one precomputed
  ``(B, T)`` boolean mask).
* ``conv2d_fused`` / ``batchnorm2d_fused`` collapse the im2col
  convolution and the training-mode batch normalisation into one node
  each (the reference ``Conv2d`` builds ``kh·kw`` slice nodes and the
  reference ``BatchNorm2d`` a chain of elementwise nodes).
* The fused elementwise loss chains live in
  :mod:`repro.nn.functional` (``mae_loss_fused`` etc.).

Saved-activation buffers keep the *parameter* dtype (float64 for the
default ``repro.nn`` zone, float32 when a model is cast down) — the
fast engine never silently upcasts, which the recurrent layers assert.

``BENCH_fit.json`` — written by ``benchmarks/test_fit_speedup.py`` —
is validated fail-closed by :func:`validate_bench_fit`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from .tensor import Tensor, scatter_rows

NN_ENGINES = ("fast", "reference")


def default_nn_engine() -> str:
    """Engine selected by ``REPRO_NN_ENGINE`` (default ``"fast"``)."""
    engine = os.environ.get("REPRO_NN_ENGINE", "fast")
    if engine not in NN_ENGINES:
        raise ValueError(
            f"REPRO_NN_ENGINE must be one of {NN_ENGINES}, got {engine!r}")
    return engine


def resolve_nn_engine(engine: Optional[str]) -> str:
    """Validate an engine name; ``None`` falls back to the default."""
    if engine is None:
        return default_nn_engine()
    if engine not in NN_ENGINES:
        raise ValueError(
            f"nn engine must be one of {NN_ENGINES}, got {engine!r}")
    return engine


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Matches ``Tensor.sigmoid`` bit-for-bit (same clip window)."""
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))


def sequence_mask(lengths: np.ndarray, steps: int) -> np.ndarray:
    """One (B, T) boolean mask: ``mask[b, t]`` iff ``t < lengths[b]``.

    Precomputed once per forward instead of one Tensor per step.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.arange(steps)[None, :] < lengths[:, None]


# ----------------------------------------------------------------------
# Fused LSTM sequence kernel
# ----------------------------------------------------------------------
def _lstm_unroll(gates_all: np.ndarray, w_h: np.ndarray,
                 mask_tm: np.ndarray, hs: int):
    """Shared LSTM recurrence (Eq. 12-16) over time-major gate inputs.

    ``gates_all`` is (T, B, 4H) holding the input projection plus bias;
    it is overwritten in place with the gate *activations* (the saved
    buffers BPTT needs).  Returns ``(h_all, c_all, tanh_c, h_final)``.
    """
    steps, batch = gates_all.shape[:2]
    dtype = gates_all.dtype
    h_all = np.empty((steps, batch, hs), dtype=dtype)
    c_all = np.empty((steps, batch, hs), dtype=dtype)
    tanh_c = np.empty((steps, batch, hs), dtype=dtype)
    rec = np.empty((batch, 4 * hs), dtype=dtype)

    h = np.zeros((batch, hs), dtype=dtype)
    c = np.zeros((batch, hs), dtype=dtype)
    for t in range(steps):
        gates = gates_all[t]
        gates += np.matmul(h, w_h.T, out=rec)
        # One in-place sigmoid over the (f, i, o) block and one tanh
        # over g — same elementwise sequence as ``_sigmoid``, without
        # three separate allocations per step.
        zs = gates[:, :3 * hs]
        np.clip(zs, -60, 60, out=zs)
        np.negative(zs, out=zs)
        np.exp(zs, out=zs)
        zs += 1.0
        np.reciprocal(zs, out=zs)
        zg = gates[:, 3 * hs:]
        np.tanh(zg, out=zg)
        f = gates[:, 0 * hs:1 * hs]
        i = gates[:, 1 * hs:2 * hs]
        o = gates[:, 2 * hs:3 * hs]
        c_cand = f * c + i * zg                         # Eq. 15
        tc = np.tanh(c_cand, out=tanh_c[t])
        m = mask_tm[t]
        h_all[t] = h = np.where(m, o * tc, h)           # Eq. 16
        c_all[t] = c = np.where(m, c_cand, c)
    return h_all, c_all, tanh_c, h


def _lstm_bptt(grad_tm: Optional[np.ndarray], grad_final: np.ndarray,
               gates_all: np.ndarray, c_all: np.ndarray,
               tanh_c: np.ndarray, w_h: np.ndarray,
               mask_tm: np.ndarray, hs: int) -> np.ndarray:
    """Shared hand-written BPTT; returns time-major (T, B, 4H) dgates.

    ``grad_tm`` carries per-step output gradients (or ``None`` when
    only the final hidden state was consumed); ``grad_final`` seeds the
    running dh.
    """
    steps, batch = gates_all.shape[:2]
    dtype = gates_all.dtype
    dgates_all = np.empty((steps, batch, 4 * hs), dtype=dtype)
    dh = grad_final.astype(dtype, copy=True)
    dc = np.zeros((batch, hs), dtype=dtype)
    for t in range(steps - 1, -1, -1):
        m = mask_tm[t]
        dh_t = grad_tm[t] + dh if grad_tm is not None else dh
        a_t = gates_all[t]
        f = a_t[:, 0 * hs:1 * hs]
        i = a_t[:, 1 * hs:2 * hs]
        o = a_t[:, 2 * hs:3 * hs]
        g = a_t[:, 3 * hs:4 * hs]
        tc = tanh_c[t]
        c_prev = (c_all[t - 1] if t
                  else np.zeros((batch, hs), dtype=dtype))
        # Masked rows forward both h and c straight to step t-1.
        dh_cand = np.where(m, dh_t, 0.0)
        dc_cand = np.where(m, dc, 0.0) + dh_cand * o * (1.0 - tc * tc)
        do = dh_cand * tc
        df = dc_cand * c_prev
        di = dc_cand * g
        dg = dc_cand * i
        dz = dgates_all[t]
        np.multiply(df * f, 1.0 - f, out=dz[:, 0 * hs:1 * hs])
        np.multiply(di * i, 1.0 - i, out=dz[:, 1 * hs:2 * hs])
        np.multiply(do * o, 1.0 - o, out=dz[:, 2 * hs:3 * hs])
        np.multiply(dg, 1.0 - g * g, out=dz[:, 3 * hs:4 * hs])
        dh = dz @ w_h + np.where(m, 0.0, dh_t)
        dc = dc_cand * f + np.where(m, 0.0, dc)
    return dgates_all


def lstm_sequence_fused(x: Tensor, weight: Tensor, bias: Tensor,
                        hidden_size: int, mask: np.ndarray) -> Tensor:
    """Run an LSTM (paper Eq. 12-16) over a padded batch in one node.

    Parameters
    ----------
    x: (B, T, D) input batch.
    weight: (4H, D+H) fused gate weights, rows ordered (f, i, o, g).
    bias: (4H,) gate bias.
    mask: (B, T) boolean; padded steps carry the previous state.

    Returns
    -------
    (B, T, H) outputs tensor; ``outputs[:, t]`` is the masked-carried
    hidden state, so ``outputs[:, -1]`` is h at each row's true last
    step.
    """
    batch, steps, in_size = x.shape
    hs = hidden_size
    w = weight.data
    w_x = w[:, :in_size]                     # (4H, D)
    w_h = w[:, in_size:]                     # (4H, H)
    dtype = w.dtype
    xd = x.data

    # Time-major working layout: per-step slices of (T, B, ·) arrays
    # are contiguous, so the recurrence GEMM writes straight into the
    # saved-activation storage instead of copying strided slices.
    x_tm = np.ascontiguousarray(xd.transpose(1, 0, 2))
    flat_x = x_tm.reshape(steps * batch, in_size)
    gates_all = (flat_x @ w_x.T + bias.data).reshape(steps, batch, 4 * hs)
    mask_tm = mask.T[:, :, None]             # (T, B, 1)

    h_all, c_all, tanh_c, _ = _lstm_unroll(gates_all, w_h, mask_tm, hs)
    outputs = np.ascontiguousarray(h_all.transpose(1, 0, 2))

    def backward(grad: np.ndarray):
        grad_tm = np.ascontiguousarray(grad.transpose(1, 0, 2))
        zero_h = np.zeros((batch, hs), dtype=dtype)
        dgates_all = _lstm_bptt(grad_tm, zero_h, gates_all, c_all,
                                tanh_c, w_h, mask_tm, hs)
        flat = dgates_all.reshape(steps * batch, 4 * hs)
        dx = np.ascontiguousarray(
            (flat @ w_x).reshape(steps, batch, in_size).transpose(1, 0, 2))
        dw_x = flat.T @ flat_x
        h_prev = np.zeros((steps, batch, hs), dtype=dtype)
        h_prev[1:] = h_all[:-1]
        dw_h = flat.T @ h_prev.reshape(steps * batch, hs)
        dw = np.concatenate([dw_x, dw_h], axis=1)
        db = flat.sum(axis=0)
        return dx, dw, db

    return Tensor._make(outputs, (x, weight, bias), backward)


def lstm_span_encode_fused(tcodes: Tensor, scodes: Tensor,
                           weight: Tensor, bias: Tensor,
                           hidden_size: int, lengths: np.ndarray,
                           index_map: np.ndarray) -> Tensor:
    """Encode flat per-element codes straight to the LSTM's h_n.

    The Trajectory Encoder's hot path (Eq. 12-17): every path element
    of the batch has a time code ``tcodes[j]`` and a segment code
    ``scodes[j]`` (both flat over ``total`` elements), and
    ``index_map[b, t]`` names the flat row feeding step ``t`` of batch
    row ``b``.  The per-op composition materialises
    ``concat([tcodes, scodes])``, gathers it into a padded (B, T, D)
    tensor, runs the LSTM and slices the last step — four graph nodes
    and three full-batch copies.  This kernel fuses all of it and runs
    the recurrence *packed*:

    - the input projection runs unpadded on the flat codes (one GEMM
      per code family, each row projected once however often the
      padding would repeat it);
    - batch rows are sorted by length descending, so at step ``t``
      only the prefix of rows still inside their sequence is touched —
      no masking arithmetic, and short rows simply freeze.  Each row's
      update is identical to the padded unroll's (rows are independent
      through every elementwise op and GEMM row), so parity with the
      reference composition holds;
    - BPTT emits gate gradients for exactly the ``total`` live
      (row, step) pairs, and the input gradient scatters back at the
      narrow code width.

    Parameters
    ----------
    tcodes: (total, D_t) flat time codes.
    scodes: (total, D_s) flat segment codes.
    weight: (4H, D_t+D_s+H) fused gate weights, (f, i, o, g) rows.
    bias: (4H,) gate bias.
    lengths: (B,) true sequence lengths (1 <= length <= T).
    index_map: (B, T) int rows into the flat codes; entries at
        ``t >= lengths[b]`` are padding and never read.

    Returns
    -------
    (B, H) tensor — h at each row's true last step (Eq. 16's h_n).
    """
    total, d_t = tcodes.shape
    d_s = scodes.shape[1]
    in_size = d_t + d_s
    batch, steps = index_map.shape
    hs = hidden_size
    w = weight.data
    w_h = w[:, in_size:]
    dtype = w.dtype

    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.argsort(-lengths, kind="stable")
    lens_sorted = lengths[order]
    # active[t] = rows still running at step t; a non-increasing
    # prefix length because rows are sorted by length descending.
    active = np.searchsorted(-lens_sorted, -np.arange(steps),
                             side="left")
    idx_tm = np.ascontiguousarray(index_map[order].T)    # (T, B)

    # Project the flat codes once; steps gather *gate* rows on demand.
    gx = tcodes.data @ w[:, :d_t].T
    gx += scodes.data @ w[:, d_t:in_size].T
    gx += bias.data

    gates_all = np.empty((steps, batch, 4 * hs), dtype=dtype)
    h_all = np.empty((steps, batch, hs), dtype=dtype)
    c_all = np.empty((steps, batch, hs), dtype=dtype)
    tanh_c = np.empty((steps, batch, hs), dtype=dtype)
    rec = np.empty((batch, 4 * hs), dtype=dtype)
    h = np.zeros((batch, hs), dtype=dtype)
    c = np.zeros((batch, hs), dtype=dtype)
    for t in range(steps):
        nt = int(active[t])
        gates = gates_all[t, :nt]
        np.take(gx, idx_tm[t, :nt], axis=0, out=gates)
        hn = h[:nt]
        gates += np.matmul(hn, w_h.T, out=rec[:nt])
        # Same elementwise sequence as ``_lstm_unroll``/``_sigmoid``.
        zs = gates[:, :3 * hs]
        np.clip(zs, -60, 60, out=zs)
        np.negative(zs, out=zs)
        np.exp(zs, out=zs)
        zs += 1.0
        np.reciprocal(zs, out=zs)
        zg = gates[:, 3 * hs:]
        np.tanh(zg, out=zg)
        f = gates[:, 0 * hs:1 * hs]
        i = gates[:, 1 * hs:2 * hs]
        o = gates[:, 2 * hs:3 * hs]
        cn = c[:nt]
        cn *= f
        cn += i * zg                                 # Eq. 15
        c_all[t, :nt] = cn
        tc = np.tanh(cn, out=tanh_c[t, :nt])
        np.multiply(o, tc, out=hn)                   # Eq. 16
        h_all[t, :nt] = hn
    h_final = np.empty_like(h)
    h_final[order] = h

    # Packed layout bounds: step t's live rows occupy
    # [bounds[t], bounds[t+1]) and the live pairs total ``total``.
    bounds = np.concatenate([[0], np.cumsum(active)])

    def backward(grad: np.ndarray):
        dh = np.ascontiguousarray(grad[order]).astype(dtype, copy=False)
        dc = np.zeros((batch, hs), dtype=dtype)
        zero_c = np.zeros((batch, hs), dtype=dtype)
        dz_packed = np.empty((int(bounds[-1]), 4 * hs), dtype=dtype)
        for t in range(steps - 1, -1, -1):
            nt = int(active[t])
            a_t = gates_all[t, :nt]
            f = a_t[:, 0 * hs:1 * hs]
            i = a_t[:, 1 * hs:2 * hs]
            o = a_t[:, 2 * hs:3 * hs]
            g = a_t[:, 3 * hs:4 * hs]
            tc = tanh_c[t, :nt]
            c_prev = c_all[t - 1, :nt] if t else zero_c[:nt]
            dh_cand = dh[:nt]
            dc_cand = dc[:nt] + dh_cand * o * (1.0 - tc * tc)
            do = dh_cand * tc
            df = dc_cand * c_prev
            di = dc_cand * g
            dg = dc_cand * i
            dz = dz_packed[bounds[t]:bounds[t + 1]]
            np.multiply(df * f, 1.0 - f, out=dz[:, 0 * hs:1 * hs])
            np.multiply(di * i, 1.0 - i, out=dz[:, 1 * hs:2 * hs])
            np.multiply(do * o, 1.0 - o, out=dz[:, 2 * hs:3 * hs])
            np.multiply(dg, 1.0 - g * g, out=dz[:, 3 * hs:4 * hs])
            # Rows past the prefix pass dh/dc straight through to
            # step t-1 untouched — the packed analogue of the padded
            # kernel's np.where carries.
            dh[:nt] = dz @ w_h
            dc[:nt] = dc_cand * f
        rows = np.concatenate(
            [idx_tm[t, :active[t]] for t in range(steps)])
        # Live pairs hit every flat row exactly once (index_map is the
        # canonical span layout), so the input gradient is a permuted
        # assignment of the projected gate gradients — no accumulation.
        proj = dz_packed @ w[:, :in_size]
        if rows.size == total and np.array_equal(
                np.sort(rows), np.arange(total)):
            dcodes = np.empty((total, in_size), dtype=dtype)
            dcodes[rows] = proj
        else:
            dcodes = scatter_rows(rows, proj, total)
        xg_t = tcodes.data[rows]
        xg_s = scodes.data[rows]
        hp = np.zeros((int(bounds[-1]), hs), dtype=dtype)
        for t in range(1, steps):
            hp[bounds[t]:bounds[t + 1]] = h_all[t - 1, :active[t]]
        dw = np.concatenate([
            dz_packed.T @ xg_t, dz_packed.T @ xg_s,
            dz_packed.T @ hp], axis=1)
        db = dz_packed.sum(axis=0)
        return dcodes[:, :d_t], dcodes[:, d_t:], dw, db

    return Tensor._make(h_final, (tcodes, scodes, weight, bias), backward)


# ----------------------------------------------------------------------
# Fused GRU sequence kernel
# ----------------------------------------------------------------------
def gru_sequence_fused(x: Tensor, weight_gates: Tensor, bias_gates: Tensor,
                       weight_cand: Tensor, bias_cand: Tensor,
                       hidden_size: int, mask: np.ndarray) -> Tensor:
    """Run a GRU (Cho et al. 2014) over a padded batch in one node.

    Same contract as :func:`lstm_sequence_fused`; gate order inside
    ``weight_gates`` is (z, r) as in :class:`repro.nn.GRUCell`.
    """
    batch, steps, in_size = x.shape
    hs = hidden_size
    wg = weight_gates.data
    wc = weight_cand.data
    wg_x, wg_h = wg[:, :in_size], wg[:, in_size:]
    wc_x, wc_h = wc[:, :in_size], wc[:, in_size:]
    dtype = wg.dtype
    xd = x.data

    flat_x = xd.reshape(batch * steps, in_size)
    gx_gates = (flat_x @ wg_x.T + bias_gates.data).reshape(
        batch, steps, 2 * hs)
    gx_cand = (flat_x @ wc_x.T + bias_cand.data).reshape(batch, steps, hs)

    zr_all = np.empty((batch, steps, 2 * hs), dtype=dtype)
    h_tilde_all = np.empty((batch, steps, hs), dtype=dtype)
    h_prev_all = np.empty((batch, steps, hs), dtype=dtype)
    s_all = np.empty((batch, steps, hs), dtype=dtype)
    outputs = np.empty((batch, steps, hs), dtype=dtype)

    h = np.zeros((batch, hs), dtype=dtype)
    for t in range(steps):
        h_prev_all[:, t] = h
        zr = _sigmoid(gx_gates[:, t] + h @ wg_h.T)
        zr_all[:, t] = zr
        z, r = zr[:, :hs], zr[:, hs:]
        s = r * h
        s_all[:, t] = s
        h_tilde = np.tanh(gx_cand[:, t] + s @ wc_h.T)
        h_tilde_all[:, t] = h_tilde
        m = mask[:, t, None]
        h = np.where(m, (1.0 - z) * h + z * h_tilde, h)
        outputs[:, t] = h

    def backward(grad: np.ndarray):
        dgg_all = np.empty((batch, steps, 2 * hs), dtype=dtype)
        dgc_all = np.empty((batch, steps, hs), dtype=dtype)
        dh = np.zeros((batch, hs), dtype=dtype)
        for t in range(steps - 1, -1, -1):
            m = mask[:, t, None]
            dh_t = grad[:, t] + dh
            dh_cand = np.where(m, dh_t, 0.0)
            zr = zr_all[:, t]
            z, r = zr[:, :hs], zr[:, hs:]
            h_tilde = h_tilde_all[:, t]
            h_prev = h_prev_all[:, t]
            dz = dh_cand * (h_tilde - h_prev)
            dh_prev = dh_cand * (1.0 - z) + np.where(m, 0.0, dh_t)
            dpc = (dh_cand * z) * (1.0 - h_tilde * h_tilde)
            dgc_all[:, t] = dpc
            ds = dpc @ wc_h
            dr = ds * h_prev
            dh_prev += ds * r
            dgg = dgg_all[:, t]
            dgg[:, :hs] = dz * z * (1.0 - z)
            dgg[:, hs:] = dr * r * (1.0 - r)
            dh = dh_prev + dgg @ wg_h
        flat_gg = dgg_all.reshape(batch * steps, 2 * hs)
        flat_gc = dgc_all.reshape(batch * steps, hs)
        dx = (flat_gg @ wg_x + flat_gc @ wc_x).reshape(
            batch, steps, in_size)
        dwg = np.concatenate([
            flat_gg.T @ flat_x,
            flat_gg.T @ h_prev_all.reshape(batch * steps, hs)], axis=1)
        dwc = np.concatenate([
            flat_gc.T @ flat_x,
            flat_gc.T @ s_all.reshape(batch * steps, hs)], axis=1)
        return (dx, dwg, flat_gg.sum(axis=0), dwc, flat_gc.sum(axis=0))

    return Tensor._make(
        outputs, (x, weight_gates, bias_gates, weight_cand, bias_cand),
        backward)


# ----------------------------------------------------------------------
# Fused convolution / batch normalisation
# ----------------------------------------------------------------------
def conv2d_fused(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                 stride: Tuple[int, int],
                 padding: Tuple[int, int]) -> Tensor:
    """im2col + GEMM convolution as a single autograd node.

    The reference :class:`repro.nn.Conv2d` assembles ``kh·kw`` slice
    nodes whose backwards each allocate a padded-input-sized buffer;
    here the unfold is a zero-copy ``sliding_window_view`` and the
    backward scatters gradient back with one strided add per kernel
    offset.
    """
    n, cin, h, w = x.shape
    cout, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    xd = x.data
    if ph or pw:
        xd = np.pad(xd, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    hp, wp = xd.shape[2], xd.shape[3]
    out_h = (hp - kh) // sh + 1
    out_w = (wp - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}) larger than padded input ({hp}x{wp})")
    # (N, C, out_h, out_w, kh, kw) view, then one contiguous copy.
    windows = np.lib.stride_tricks.sliding_window_view(
        xd, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))
    cols = cols.reshape(n * out_h * out_w, cin * kh * kw)
    flat_w = weight.data.reshape(cout, cin * kh * kw)
    out = cols @ flat_w.T
    if bias is not None:
        out += bias.data
    out = np.ascontiguousarray(
        out.reshape(n, out_h, out_w, cout).transpose(0, 3, 1, 2))

    def backward(grad: np.ndarray):
        g = np.ascontiguousarray(grad.transpose(0, 2, 3, 1)).reshape(
            n * out_h * out_w, cout)
        dw = (g.T @ cols).reshape(weight.shape)
        db = g.sum(axis=0) if bias is not None else None
        dcols = (g @ flat_w).reshape(n, out_h, out_w, cin, kh, kw)
        dxp = np.zeros((n, cin, hp, wp), dtype=grad.dtype)
        for di in range(kh):
            for dj in range(kw):
                dxp[:, :, di:di + sh * out_h:sh,
                    dj:dj + sw * out_w:sw] += \
                    dcols[:, :, :, :, di, dj].transpose(0, 3, 1, 2)
        dx = dxp[:, :, ph:hp - ph, pw:wp - pw] if (ph or pw) else dxp
        if bias is not None:
            return dx, dw, db
        return dx, dw

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


def batchnorm2d_fused(x: Tensor, weight: Tensor, bias: Tensor,
                      eps: float) -> Tensor:
    """Training-mode batch normalisation as a single autograd node.

    Normalises with the batch statistics over (N, H, W) per channel —
    identical to the reference op chain in
    :class:`repro.nn.BatchNorm2d` — with the standard hand-derived
    backward.  Running-statistics bookkeeping stays in the module.
    """
    axes = (0, 2, 3)
    xd = x.data
    count = xd.shape[0] * xd.shape[2] * xd.shape[3]
    mu = xd.mean(axis=axes, keepdims=True)
    var = ((xd - mu) ** 2).mean(axis=axes, keepdims=True)
    istd = 1.0 / np.sqrt(var + eps)
    xhat = (xd - mu) * istd
    wq = weight.data.reshape(1, -1, 1, 1)
    out = xhat * wq + bias.data.reshape(1, -1, 1, 1)

    def backward(grad: np.ndarray):
        dw = (grad * xhat).sum(axis=axes)
        db = grad.sum(axis=axes)
        dxhat = grad * wq
        dx = (istd / count) * (
            count * dxhat
            - dxhat.sum(axis=axes, keepdims=True)
            - xhat * (dxhat * xhat).sum(axis=axes, keepdims=True))
        return dx, dw, db

    return Tensor._make(out, (x, weight, bias), backward)


def conv_bn_relu_fused(x: Tensor, conv_w: Tensor, conv_b: Optional[Tensor],
                       bn_w: Tensor, bn_b: Tensor,
                       stride: Tuple[int, int], padding: Tuple[int, int],
                       eps: float, mask: Optional[np.ndarray] = None
                       ) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Conv2d → training-mode BatchNorm2d → ReLU (→ optional mask) as
    one autograd node.

    The whole block works in the flat ``(N·H'·W', C_out)`` layout the
    im2col GEMM produces, so the batch statistics, the affine transform
    and the ReLU never materialise intermediate NCHW tensors.  ``mask``
    (broadcastable against the NCHW output, e.g. ``(N, 1, H', 1)``)
    zeroes padding rows after the ReLU exactly like the reference
    ``relu() * mask`` chain.

    Returns ``(out, batch_mean, batch_var)``; running-statistics
    bookkeeping stays in the :class:`~repro.nn.BatchNorm2d` module.
    """
    n, cin, h, w = x.shape
    cout, _, kh, kw = conv_w.shape
    sh, sw = stride
    ph, pw = padding
    xd = x.data
    if ph or pw:
        xd = np.pad(xd, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    hp, wp = xd.shape[2], xd.shape[3]
    out_h = (hp - kh) // sh + 1
    out_w = (wp - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}) larger than padded input ({hp}x{wp})")
    windows = np.lib.stride_tricks.sliding_window_view(
        xd, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))
    cols = cols.reshape(n * out_h * out_w, cin * kh * kw)
    flat_w = conv_w.data.reshape(cout, cin * kh * kw)
    y = cols @ flat_w.T                                  # (N·L, C_out)
    if conv_b is not None:
        y += conv_b.data
    count = y.shape[0]
    # Axis-0 reductions on narrow arrays are slow in numpy; route the
    # channel sums through BLAS (ones-vector GEMV / einsum column dots)
    # and fold the BN affine into one multiply-add per element.
    ones = np.ones(count, dtype=y.dtype)
    mean = (ones @ y) / count
    y -= mean                                            # centred, in place
    var = np.einsum("ij,ij->j", y, y) / count
    istd = 1.0 / np.sqrt(var + eps)
    a = istd * bn_w.data
    z = y * a
    z += bn_b.data                                       # == xhat·γ + β
    zr = np.maximum(z, 0.0)
    pos = zr > 0.0
    out = np.ascontiguousarray(
        zr.reshape(n, out_h, out_w, cout).transpose(0, 3, 1, 2))
    if mask is not None:
        out = out * mask

    def backward(grad: np.ndarray):
        if mask is not None:
            grad = grad * mask
        # Fresh buffer: the ReLU gate multiply also materialises the
        # (N, H', W', C) layout without mutating the incoming grad.
        g = grad.transpose(0, 2, 3, 1).reshape(count, cout) * pos
        xhat = y * istd                                  # y is centred
        dbn_w = np.einsum("ij,ij->j", g, xhat)
        dbn_b = ones @ g
        dxhat = np.multiply(g, bn_w.data, out=g)
        s1 = ones @ dxhat
        s2 = np.einsum("ij,ij->j", dxhat, xhat)
        # dy = (istd/count)·(count·dxhat − s1 − xhat·s2), in-place
        dy = np.multiply(dxhat, istd, out=dxhat)
        np.multiply(xhat, istd * s2 / count, out=xhat)
        dy -= xhat
        dy -= istd * s1 / count
        db = ones @ dy if conv_b is not None else None
        dw = (dy.T @ cols).reshape(conv_w.shape)
        dcols = (dy @ flat_w).reshape(n, out_h, out_w, cin, kh, kw)
        dxp = np.zeros((n, cin, hp, wp), dtype=grad.dtype)
        for di in range(kh):
            for dj in range(kw):
                dxp[:, :, di:di + sh * out_h:sh,
                    dj:dj + sw * out_w:sw] += \
                    dcols[:, :, :, :, di, dj].transpose(0, 3, 1, 2)
        dx = dxp[:, :, ph:hp - ph, pw:wp - pw] if (ph or pw) else dxp
        if conv_b is not None:
            return dx, dw, db, dbn_w, dbn_b
        return dx, dw, dbn_w, dbn_b

    parents = ((x, conv_w, bn_w, bn_b) if conv_b is None
               else (x, conv_w, conv_b, bn_w, bn_b))
    return Tensor._make(out, parents, backward), mean, var


def interval_resnet_fused(x: Tensor,
                          conv1_w: Tensor, conv1_b: Tensor,
                          bn1_w: Tensor, bn1_b: Tensor,
                          conv2_w: Tensor, conv2_b: Tensor,
                          bn2_w: Tensor, bn2_b: Tensor,
                          conv3_w: Tensor, conv3_b: Tensor,
                          eps1: float, eps2: float,
                          mask: Optional[np.ndarray] = None
                          ) -> Tuple[Tensor, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]:
    """The whole Time Interval Encoder residual block (paper Eq. 5-8)
    as one autograd node.

    Specialised to the block's shape contract — ``(N, 1, Δd, d_t)``
    input, two ``(k, 1)`` same-padded convolutions with training-mode
    BatchNorm + ReLU (+ optional padding-row mask), a 1x1 convolution
    and the residual add.  Because the input and output channel counts
    are 1 and every kernel spans only the Δd axis, the entire block
    runs in the GEMM-friendly ``(N, Δd, d_t, C)`` layout with no
    NCHW transposes at all; layer-to-layer hand-off is a reshape.

    The Δd-axis convolutions are decomposed per kernel tap: one
    contiguous GEMM for the centre tap plus one shifted slice-GEMM per
    off-centre tap, so no im2col buffer, no ``np.pad`` and no strided
    ``sliding_window_view`` copy is ever materialised (those layout
    shuffles dominate the cost at the block's narrow channel widths).
    Taps that fall entirely off a short Δd axis contribute nothing;
    with Δd = 1 each convolution collapses to a single GEMM.

    ``mask`` is the usual ``(N, 1, Δd, 1)`` padding-row mask; it is
    applied to the input (so the residual uses the masked input, same
    as the reference ``x * mask`` pre-step) and after each ReLU.

    Returns ``(out, mean1, var1, mean2, var2)`` — the batch statistics
    feed the two BatchNorm modules' running buffers.
    """
    n, cin, height, width = x.shape
    if cin != 1 or conv3_w.shape[0] != 1:
        raise ValueError("interval_resnet_fused expects C_in = C_out = 1")
    c1 = conv1_w.shape[0]
    c2 = conv2_w.shape[0]
    k = conv1_w.shape[2]
    if conv1_w.shape[3] != 1 or conv2_w.shape[3] != 1 or k % 2 == 0:
        raise ValueError("interval_resnet_fused expects odd (k, 1) kernels")
    p = k // 2
    dtype = conv1_w.data.dtype
    rows = n * height * width
    ones = np.ones(rows, dtype=dtype)

    m_rows = None
    mbool = None
    if mask is not None:
        m_rows = mask.reshape(n, height, 1)          # broadcast over d_t
        mbool = np.ascontiguousarray(np.broadcast_to(
            m_rows > 0.0, (n, height, width))).reshape(rows, 1)

    x0 = x.data.reshape(n, height, width)
    if m_rows is not None:
        x0 = x0 * m_rows

    def _tap_slices(s: int):
        """(destination, source) Δd-slices for a tap shifted by ``s``."""
        if s > 0:
            return slice(0, height - s), slice(s, height)
        return slice(-s, height), slice(0, height + s)

    def _conv_h(src_flat: np.ndarray, w_taps: np.ndarray, ci: int,
                co: int, saved: dict) -> np.ndarray:
        """Same-padded (k, 1) convolution along Δd as per-tap GEMMs.

        ``src_flat`` is (rows, ci) viewed as (N, Δd, W, ci); ``w_taps``
        is (k, co, ci).  The contiguous shifted source copies are kept
        in ``saved`` for the weight gradients.
        """
        y = src_flat @ w_taps[p].T                   # centre tap
        ynd = y.reshape(n, height, width, co)
        src_nd = src_flat.reshape(n, height, width, ci)
        for dh in range(k):
            s = dh - p
            if s == 0 or height - abs(s) <= 0:
                continue
            dst, src = _tap_slices(s)
            xs = np.ascontiguousarray(src_nd[:, src]).reshape(-1, ci)
            saved[dh] = xs
            ynd[:, dst] += (xs @ w_taps[dh].T).reshape(
                n, height - abs(s), width, co)
        return y

    def _conv_h_backward(dy_flat: np.ndarray, src_flat: np.ndarray,
                         w_taps: np.ndarray, ci: int, co: int,
                         saved: dict):
        """Input and weight gradients of :func:`_conv_h`."""
        dx = dy_flat @ w_taps[p]
        dwt = np.zeros_like(w_taps)
        dwt[p] = dy_flat.T @ src_flat
        dxnd = dx.reshape(n, height, width, ci)
        dynd = dy_flat.reshape(n, height, width, co)
        for dh in range(k):
            s = dh - p
            if s == 0 or height - abs(s) <= 0:
                continue
            dst, src = _tap_slices(s)
            dys = np.ascontiguousarray(dynd[:, dst]).reshape(-1, co)
            dwt[dh] = dys.T @ saved[dh]
            dxnd[:, src] += (dys @ w_taps[dh]).reshape(
                n, height - abs(s), width, ci)
        return dx, dwt

    def _bn_relu(y: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                 eps: float):
        """Centre ``y`` in place; return (z_relu, pos, mean, var, istd)."""
        mean = (ones @ y) / rows
        y -= mean
        var = np.einsum("ij,ij->j", y, y) / rows
        istd = 1.0 / np.sqrt(var + eps)
        z = y * (istd * gamma)
        z += beta
        # One boolean gate covers the ReLU and the padding-row mask
        # (mask is strictly 0/1): ``z * pos`` zeroes exactly the rows
        # ``max(z, 0) * mask`` would, and ``pos`` doubles as the fused
        # backward multiplier.
        pos = z > 0.0
        if mbool is not None:
            pos &= mbool
        z *= pos
        return z, pos, mean, var, istd

    w1t = np.ascontiguousarray(
        conv1_w.data.reshape(c1, 1, k).transpose(2, 0, 1))   # (k, c1, 1)
    w2t = np.ascontiguousarray(
        conv2_w.data.reshape(c2, c1, k).transpose(2, 0, 1))  # (k, c2, c1)
    w3f = conv3_w.data.reshape(1, c2)

    saved1: dict = {}
    saved2: dict = {}
    xf = x0.reshape(rows, 1)
    y1 = _conv_h(xf, w1t, 1, c1, saved1)
    y1 += conv1_b.data
    z1, pos1, mean1, var1, istd1 = _bn_relu(
        y1, bn1_w.data, bn1_b.data, eps1)            # Eq. 5

    y2 = _conv_h(z1, w2t, c1, c2, saved2)
    y2 += conv2_b.data
    z2, pos2, mean2, var2, istd2 = _bn_relu(
        y2, bn2_w.data, bn2_b.data, eps2)            # Eq. 6

    y3 = z2 @ w3f.T
    y3 += conv3_b.data                               # Eq. 7
    out = x0 + y3.reshape(n, height, width)          # Eq. 8 (residual)
    out = out.reshape(n, 1, height, width)

    def _bn_backward(g: np.ndarray, y_centred: np.ndarray,
                     gamma: np.ndarray, istd: np.ndarray):
        """BatchNorm backward in the flat layout.

        Mutates ``g`` and consumes ``y_centred`` (dead after this
        call): ``xhat`` never materialises — the reductions against it
        fold its per-column ``istd`` factor into the scalar, and the
        mean/variance correction is written into ``y_centred``.
        """
        dgamma = np.einsum("ij,ij->j", g, y_centred) * istd
        dbeta = ones @ g
        dxhat = np.multiply(g, gamma, out=g)
        s1 = ones @ dxhat
        s2 = np.einsum("ij,ij->j", dxhat, y_centred) * istd
        dy = np.multiply(dxhat, istd, out=dxhat)
        np.multiply(y_centred, (istd * istd) * s2 / rows, out=y_centred)
        y_centred += istd * s1 / rows
        dy -= y_centred
        return dy, dgamma, dbeta

    def backward(grad: np.ndarray):
        go = grad.reshape(n, height, width)
        dy3 = go.reshape(rows, 1)
        dw3 = (dy3.T @ z2).reshape(conv3_w.shape)
        db3 = ones @ dy3
        dz2 = dy3 @ w3f
        dz2 *= pos2
        dy2, dg2, dbb2 = _bn_backward(dz2, y2, bn2_w.data, istd2)
        db2 = ones @ dy2
        dz1, dw2t = _conv_h_backward(dy2, z1, w2t, c1, c2, saved2)
        dw2 = np.ascontiguousarray(
            dw2t.transpose(1, 2, 0)).reshape(conv2_w.shape)
        dz1 *= pos1
        dy1, dg1, dbb1 = _bn_backward(dz1, y1, bn1_w.data, istd1)
        db1 = ones @ dy1
        dx0f, dw1t = _conv_h_backward(dy1, xf, w1t, 1, c1, saved1)
        dw1 = np.ascontiguousarray(
            dw1t.transpose(1, 2, 0)).reshape(conv1_w.shape)
        dx0 = dx0f.reshape(n, height, width)
        dx0 += go                                    # residual branch
        if m_rows is not None:
            dx0 *= m_rows
        return (dx0.reshape(x.shape), dw1, db1, dg1, dbb1,
                dw2, db2, dg2, dbb2, dw3, db3)

    node = Tensor._make(
        out, (x, conv1_w, conv1_b, bn1_w, bn1_b,
              conv2_w, conv2_b, bn2_w, bn2_b, conv3_w, conv3_b),
        backward)
    return node, mean1, var1, mean2, var2


# ----------------------------------------------------------------------
# Fused two-layer perceptron
# ----------------------------------------------------------------------
def mlp2_fused(x: Tensor, w1: Tensor, b1: Tensor,
               w2: Tensor, b2: Tensor,
               const_tail: Optional[np.ndarray] = None) -> Tensor:
    """``W2·ReLU(W1 x + b1) + b2`` (the paper's recurring MLP) as one
    autograd node — two GEMMs forward, four backward, no intermediate
    graph nodes.

    ``const_tail`` fuses the common ``concat([x, constants])`` input
    pattern (position ratios, interval remainders): the tail columns
    of ``W1`` multiply the constant features directly, skipping the
    concat node, its backward split and the dead gradient the constant
    leaf would otherwise get.
    """
    xd = x.data
    lead = xd.shape[:-1]
    d_x = xd.shape[-1]
    flat_x = xd.reshape(-1, d_x)
    if const_tail is None:
        h = flat_x @ w1.data.T
    else:
        h = flat_x @ w1.data[:, :d_x].T
        h += const_tail.reshape(-1, const_tail.shape[-1]) \
            @ w1.data[:, d_x:].T
    h += b1.data
    np.maximum(h, 0.0, out=h)
    pos = h > 0.0
    out = h @ w2.data.T
    out += b2.data
    out = out.reshape(lead + (w2.shape[0],))

    def backward(grad: np.ndarray):
        g = grad.reshape(-1, grad.shape[-1])
        dw2 = g.T @ h
        db2 = g.sum(axis=0)
        dh = (g @ w2.data)
        dh *= pos
        db1 = dh.sum(axis=0)
        if const_tail is None:
            dw1 = dh.T @ flat_x
            dx = (dh @ w1.data).reshape(xd.shape)
        else:
            dw1 = np.empty_like(w1.data)
            dw1[:, :d_x] = dh.T @ flat_x
            dw1[:, d_x:] = dh.T @ const_tail.reshape(
                -1, const_tail.shape[-1])
            dx = (dh @ w1.data[:, :d_x]).reshape(xd.shape)
        return dx, dw1, db1, dw2, db2

    return Tensor._make(out, (x, w1, b1, w2, b2), backward)


# ----------------------------------------------------------------------
# BENCH_fit.json schema
# ----------------------------------------------------------------------
_PHASE_KEYS = ("forward_s", "backward_s", "optimizer_s")
_ENGINE_KEYS = ("fit_s",) + _PHASE_KEYS


def validate_bench_fit(payload: Dict) -> Dict:
    """Validate a ``BENCH_fit.json`` document; returns it unchanged."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    if payload.get("bench") != "fit_engine_speedup":
        raise ValueError("bench must be 'fit_engine_speedup' "
                         f"(got {payload.get('bench')!r})")
    for key in ("scale", "speedup", "floor"):
        if not isinstance(payload.get(key), (int, float)):
            raise ValueError(f"{key} must be a number")
    workload = payload.get("workload")
    if not isinstance(workload, dict):
        raise ValueError("workload must be an object")
    for key in ("trips", "steps", "batch_size", "sequence_encoder"):
        if key not in workload:
            raise ValueError(f"workload missing {key!r}")
    for engine in ("reference", "fast"):
        stats = payload.get(engine)
        if not isinstance(stats, dict):
            raise ValueError(f"{engine} must be an object")
        for key in _ENGINE_KEYS:
            if not isinstance(stats.get(key), (int, float)):
                raise ValueError(f"{engine}.{key} must be a number")
            if stats[key] < 0:
                raise ValueError(f"{engine}.{key} must be >= 0")
        phase_sum = sum(stats[k] for k in _PHASE_KEYS)
        if phase_sum > stats["fit_s"] * 1.5:
            raise ValueError(
                f"{engine} phase breakdown exceeds total fit time")
    if payload["speedup"] < payload["floor"]:
        raise ValueError(
            f"recorded speedup {payload['speedup']:.2f}x below the "
            f"{payload['floor']:.2f}x floor")
    if "parity" in payload:
        parity = payload["parity"]
        if not isinstance(parity, dict):
            raise ValueError("parity must be an object")
        for key in ("fast_mae", "reference_mae"):
            if not isinstance(parity.get(key), (int, float)):
                raise ValueError(f"parity.{key} must be a number")
    return payload


def validate_bench_fit_file(path: str) -> Dict:
    """Load and validate a ``BENCH_fit.json`` file (CI entry point)."""
    with open(path) as handle:
        return validate_bench_fit(json.load(handle))
