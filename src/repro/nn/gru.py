"""GRU layers — an alternative sequence encoder for the Trajectory
Encoder ablations.

Section 4.4 of the paper says "we use an RNN model (e.g., LSTM)" — LSTM is
the instantiated choice, not the only admissible one.  The GRU here powers
the sequence-encoder ablation bench (LSTM vs GRU vs mean pooling) listed
in DESIGN.md Section 6.

Like :class:`repro.nn.LSTM`, the unroll has a fused ``"fast"`` engine
(:func:`~repro.nn.engine.gru_sequence_fused`) and a per-timestep
``"reference"`` oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.contracts import shaped
from .engine import gru_sequence_fused, resolve_nn_engine, sequence_mask
from .init import ensure_generator
from .modules import Module, Parameter
from .rnn import _check_lengths, _check_state_dtype
from .tensor import Tensor, concat, stack


class GRUCell(Module):
    """Gated recurrent unit (Cho et al. 2014).

    z = σ(Wz [x, h]); r = σ(Wr [x, h]);
    h~ = tanh(Wh [x, r ⊗ h]); h' = (1 − z) ⊗ h + z ⊗ h~.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator):
        super().__init__()
        rng = ensure_generator(rng, "GRUCell")
        self.input_size = input_size
        self.hidden_size = hidden_size
        k = 1.0 / np.sqrt(hidden_size)
        gate_shape = (2 * hidden_size, input_size + hidden_size)
        self.weight_gates = Parameter(rng.uniform(-k, k, size=gate_shape))
        self.bias_gates = Parameter(rng.uniform(-k, k,
                                                size=(2 * hidden_size,)))
        cand_shape = (hidden_size, input_size + hidden_size)
        self.weight_cand = Parameter(rng.uniform(-k, k, size=cand_shape))
        self.bias_cand = Parameter(rng.uniform(-k, k, size=(hidden_size,)))

    @shaped("(B, input_size), (B, hidden_size) -> (B, hidden_size)")
    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        hs = self.hidden_size
        zx = concat([x, h_prev], axis=-1)
        gates = (zx @ self.weight_gates.T + self.bias_gates).sigmoid()
        z = gates[:, :hs]
        r = gates[:, hs:]
        candidate_in = concat([x, r * h_prev], axis=-1)
        h_tilde = (candidate_in @ self.weight_cand.T
                   + self.bias_cand).tanh()
        return (1.0 - z) * h_prev + z * h_tilde


class GRU(Module):
    """Unrolled GRU over padded variable-length batches.

    Interface-compatible with :class:`repro.nn.LSTM`: returns (outputs,
    final hidden state), with padded steps frozen.  ``engine`` selects
    the fused batched kernel (``"fast"``, default) or the per-timestep
    reference unroll.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator,
                 engine: Optional[str] = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.input_size = input_size
        self.engine = resolve_nn_engine(engine)

    @shaped("(B, T, input_size) -> (B, T, hidden_size), (B, hidden_size)")
    def forward(self, x: Tensor, lengths: Optional[Sequence[int]] = None
                ) -> Tuple[Tensor, Tensor]:
        batch, steps, _ = x.shape
        lengths = _check_lengths(lengths, batch, steps)
        if self.engine == "fast":
            cell = self.cell
            _check_state_dtype(x, cell.weight_gates, "GRU")
            mask = sequence_mask(lengths, steps)
            stacked = gru_sequence_fused(
                x, cell.weight_gates, cell.bias_gates, cell.weight_cand,
                cell.bias_cand, self.hidden_size, mask)
            return stacked, stacked[:, steps - 1, :]
        return self._forward_reference(x, lengths)

    def _forward_reference(self, x: Tensor, lengths: np.ndarray
                           ) -> Tuple[Tensor, Tensor]:
        """Oracle path: one :class:`GRUCell` call per timestep."""
        batch, steps, _ = x.shape
        dtype = self.cell.weight_gates.dtype
        h = Tensor(np.zeros((batch, self.hidden_size), dtype=dtype))
        outputs: List[Tensor] = []
        for t in range(steps):
            h_new = self.cell(x[:, t, :], h)
            mask = Tensor((t < lengths).astype(dtype)[:, None])
            h = h_new * mask + h * (1.0 - mask)
            outputs.append(h)
        stacked = stack(outputs, axis=1)
        _check_state_dtype(stacked, self.cell.weight_gates, "GRU")
        return stacked, h
