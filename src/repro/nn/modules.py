"""Neural-network module system: parameters, Module base class, and the
dense layers DeepOD is assembled from.

The two-layer MLP pattern (``W2 ReLU(W1 x + b1) + b2``) appears throughout
the paper — Eq. 11 (Time Interval Encoder head), Eq. 17 (Trajectory Encoder
head), Eq. 18 (External Features Encoder head), Eq. 19 (MLP1) and Eq. 20
(MLP2) — so :class:`TwoLayerMLP` implements it once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..analysis.contracts import shaped
from . import init as init_schemes
from .engine import mlp2_fused, resolve_nn_engine
from .init import ensure_generator
from .tensor import Tensor, concat


class Parameter(Tensor):
    """A tensor flagged as trainable; collected by :meth:`Module.parameters`."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration, train/eval mode and state IO."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # -- registration ---------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())
            self._parameters[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track non-trainable state (e.g. BatchNorm running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "",
                         _seen: Optional[set] = None
                         ) -> Iterator[Tuple[str, Parameter]]:
        """Yield (name, parameter) pairs, each parameter exactly once.

        Modules may share children (e.g. the road-segment embedding is
        used by both the OD encoder and the Trajectory Encoder); the
        ``_seen`` set deduplicates so optimizers never update a shared
        parameter twice per step.
        """
        if _seen is None:
            _seen = set()
        for name, param in self._parameters.items():
            if id(param) not in _seen:
                _seen.add(id(param))
                yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".",
                                               _seen)

    def named_buffers(self, prefix: str = "",
                      _seen: Optional[set] = None
                      ) -> Iterator[Tuple[str, np.ndarray]]:
        if _seen is None:
            _seen = set()
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            if id(module) in _seen:
                continue
            _seen.add(id(module))
            yield from module.named_buffers(prefix + mod_name + ".", _seen)

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state dict -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy()
                 for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state["buffer::" + name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer::"):
                self._load_buffer(name[len("buffer::"):], value)
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r}")
            if params[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{params[name].data.shape} vs {value.shape}")
            params[name].data = value.copy()

    def _load_buffer(self, dotted: str, value: np.ndarray) -> None:
        module: Module = self
        parts = dotted.split(".")
        for part in parts[:-1]:
            module = module._modules[part]
        module.update_buffer(parts[-1], np.asarray(value).copy())

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def size_bytes(self) -> int:
        """Model size as stored parameter bytes (Table 5's ``size`` column).

        The paper reports float32 model sizes; we count 4 bytes per weight
        regardless of the float64 compute dtype so numbers are comparable.
        """
        param_bytes = 4 * self.num_parameters()
        buffer_bytes = sum(4 * np.asarray(b).size
                           for _, b in self.named_buffers())
        return param_bytes + buffer_bytes

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch-compatible weight layout."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, *,
                 rng: np.random.Generator,
                 init: str = "uniform_fan_in"):
        super().__init__()
        rng = ensure_generator(rng, "Linear")
        self.in_features = in_features
        self.out_features = out_features
        scheme = getattr(init_schemes, init)
        self.weight = Parameter(scheme((out_features, in_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(max(in_features, 1))
            self.bias: Optional[Parameter] = Parameter(
                rng.uniform(-bound, bound, size=(out_features,)))
        else:
            self.bias = None

    @shaped("(..., in_features) -> (..., out_features)")
    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features})")


class TwoLayerMLP(Module):
    """The paper's recurring two-layer perceptron: Eq. 11/17/18/19/20.

    ``out = W2 ReLU(W1 x + b1) + b2``
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 *, rng: np.random.Generator,
                 engine: Optional[str] = None):
        super().__init__()
        self.engine = resolve_nn_engine(engine)
        self.in_features = in_features
        self.out_features = out_features
        self.fc1 = Linear(in_features, hidden, rng=rng)
        self.fc2 = Linear(hidden, out_features, rng=rng)

    @shaped("(..., in_features) -> (..., out_features)")
    def forward(self, x: Tensor) -> Tensor:
        if self.engine == "fast":
            return mlp2_fused(x, self.fc1.weight, self.fc1.bias,
                              self.fc2.weight, self.fc2.bias)
        return self.fc2(self.fc1(x).relu())

    @shaped("(..., *), (..., *) -> (..., out_features)")
    def forward_with_tail(self, x: Tensor, tail: np.ndarray) -> Tensor:
        """``forward(concat([x, tail], axis=-1))`` for a constant tail.

        The paper repeatedly appends hand-computed features (position
        ratios in Eq. 17, interval remainders in Eq. 11) to a learned
        code before an MLP.  The tail carries no gradient, so the fast
        engine feeds it straight into the fused kernel — no concat
        node, no backward split, no throwaway gradient buffer.  The
        reference engine keeps the literal concat as the oracle.
        """
        if x.shape[:-1] != tail.shape[:-1]:
            raise ValueError(
                f"tail leading dims {tail.shape[:-1]} do not match "
                f"input leading dims {x.shape[:-1]}")
        if x.shape[-1] + tail.shape[-1] != self.in_features:
            raise ValueError(
                f"input ({x.shape[-1]}) + tail ({tail.shape[-1]}) "
                f"features must total in_features ({self.in_features})")
        if self.engine == "fast":
            tail = np.asarray(tail, dtype=x.dtype)
            return mlp2_fused(x, self.fc1.weight, self.fc1.bias,
                              self.fc2.weight, self.fc2.bias,
                              const_tail=tail)
        joined = concat([x, Tensor(np.asarray(tail, dtype=x.dtype))],
                        axis=-1)
        return self.fc2(self.fc1(joined).relu())


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers: List[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __len__(self):
        return len(self._layers)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Embedding(Module):
    """Lookup table equivalent to one-hot times a weight matrix (Eq. 1).

    The paper frames road-segment and time-slot embeddings as a fully
    connected layer applied to one-hot codes ``D = O^T W``; an index lookup
    into the rows of ``W`` computes exactly that product without
    materialising the one-hot vectors.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 *, rng: np.random.Generator):
        super().__init__()
        rng = ensure_generator(rng, "Embedding")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)))

    @shaped("_ -> (..., embedding_dim)")
    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})")
        return self.weight[indices]

    def load_pretrained(self, matrix: np.ndarray) -> None:
        """Initialise from an unsupervised graph embedding (Algorithm 1)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (self.num_embeddings, self.embedding_dim):
            raise ValueError(
                f"pretrained matrix shape {matrix.shape} does not match "
                f"({self.num_embeddings}, {self.embedding_dim})")
        self.weight.data = matrix.copy()

    def __repr__(self) -> str:
        return (f"Embedding({self.num_embeddings}, {self.embedding_dim})")


class LayerNorm(Module):
    """Layer normalisation over the last axis (available for extensions)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
        norm = (x - mu) / ((var + self.eps) ** 0.5)
        return norm * self.weight + self.bias


class Dropout(Module):
    def __init__(self, p: float = 0.5, *, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = ensure_generator(rng, "Dropout")

    def forward(self, x: Tensor) -> Tensor:
        from .functional import dropout
        return dropout(x, self.p, self.training, self._rng)
