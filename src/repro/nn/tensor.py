"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` framework.  A Tensor wraps a numpy array together with an
optional gradient and the information needed to back-propagate through the
computation graph that produced it.

The design mirrors the small subset of PyTorch semantics that the DeepOD
paper relies on (SIGMOD 2020, Section 4): elementwise arithmetic, matrix
multiplication, broadcasting, concatenation, slicing, reductions, and the
activation functions used by Eq. 5-20.

Example
-------
>>> import numpy as np
>>> from repro.nn import Tensor
>>> x = Tensor(np.ones((2, 3)), requires_grad=True)
>>> y = (x * 3.0).sum()
>>> y.backward()
>>> x.grad
array([[3., 3., 3.],
       [3., 3., 3.]])
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``data`` into a numpy array of a floating dtype.

    Integer (and python scalar) payloads become the framework default
    dtype; an explicit floating dtype is preserved as-is so that a model
    deliberately cast down (e.g. to float32) stays in that precision
    instead of being silently upcast at every Tensor construction.
    """
    if isinstance(data, np.ndarray):
        arr = data
    else:
        arr = np.asarray(data)
    if dtype is None:
        if np.issubdtype(arr.dtype, np.floating):
            dtype = arr.dtype
        elif np.issubdtype(arr.dtype, np.integer):
            dtype = _DEFAULT_DTYPE
        else:
            dtype = arr.dtype
    return arr.astype(dtype, copy=False)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    During the forward pass operands may be broadcast up to a common shape;
    the corresponding backward pass must accumulate gradient contributions
    over every broadcast dimension so the gradient matches the operand's
    original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def scatter_rows(rows: np.ndarray, values: np.ndarray,
                 num_rows: int) -> np.ndarray:
    """Sum the rows of ``values`` into ``num_rows`` buckets by index.

    The scatter-add behind every row gather's backward pass (embedding
    lookups, padded-sequence index maps): per-column ``np.bincount``
    beats ``np.add.at`` by ~4x on repeated indices.
    """
    cols = values.shape[1]
    full = np.empty((num_rows, cols), dtype=values.dtype)
    for j in range(cols):
        full[:, j] = np.bincount(rows, weights=values[:, j],
                                 minlength=num_rows)
    return full


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload.  Floating point data is stored as float64 for
        numerically robust gradient checks.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = ""):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order over the dynamic graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # A leaf: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(self, grad: np.ndarray,
                           grads: dict[int, np.ndarray]) -> None:
        parent_grads = self._backward(grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            elif parent._backward is None:
                # Leaf tensors accumulate directly so repeated backward()
                # calls across iterations sum as users expect.
                parent._accumulate(pgrad)
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            return (unbroadcast(grad, self.shape),
                    unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            return (-grad,)
        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad):
            return (unbroadcast(grad, self.shape),
                    unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            return (unbroadcast(grad * other.data, self.shape),
                    unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            return (unbroadcast(grad / other.data, self.shape),
                    unbroadcast(-grad * self.data / (other.data ** 2),
                                other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        out_data = self.data @ other.data

        a, b = self, other

        def backward(grad):
            a_data, b_data = a.data, b.data
            if a_data.ndim == 1 and b_data.ndim == 1:
                ga = grad * b_data
                gb = grad * a_data
            elif a_data.ndim == 1:
                ga = grad @ np.swapaxes(b_data, -1, -2)
                gb = np.outer(a_data, grad) if b_data.ndim == 2 else None
                if gb is None:
                    gb = a_data[:, None] * grad[None, :]
            elif b_data.ndim == 1:
                ga = np.outer(grad, b_data) if a_data.ndim == 2 else \
                    grad[..., None] * b_data
                gb = np.swapaxes(a_data, -1, -2) @ grad if a_data.ndim == 2 \
                    else np.einsum("...i,...->i", a_data, grad)
            else:
                ga = grad @ np.swapaxes(b_data, -1, -2)
                gb = np.swapaxes(a_data, -1, -2) @ grad
                ga = unbroadcast(ga, a.shape)
                gb = unbroadcast(gb, b.shape)
            return ga, gb

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Comparison (no gradients)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other)

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(orig_shape),)

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad):
            return (np.transpose(grad, inverse),)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.shape

        def backward(grad):
            # Row-gather scatter (embedding lookups, padded-sequence
            # index maps): any integer index array over the rows of a
            # 2-D tensor flattens to the 1-D case.
            if (isinstance(index, np.ndarray)
                    and index.dtype.kind in "iu"
                    and len(shape) == 2
                    and grad.shape == index.shape + (shape[1],)
                    and (index.size == 0 or index.min() >= 0)):
                return (scatter_rows(index.reshape(-1),
                                     grad.reshape(-1, shape[1]),
                                     shape[0]),)
            full = np.zeros(shape, dtype=grad.dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        shape = self.shape
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([shape[a] for a in axes]))

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy() / count,)

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out_data, axis)
            mask = (self.data == out).astype(grad.dtype)
            # Split gradient evenly across ties for a well-defined rule.
            denom = mask.sum(axis=axis, keepdims=True)
            return (mask * g / denom,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            return (grad * (self.data > 0),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700, 700))

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / np.maximum(out_data, 1e-12),)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad):
            return (grad * np.sign(self.data),)

        return Tensor._make(out_data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.array_split(grad, splits, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(out_data, tensors, backward)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
