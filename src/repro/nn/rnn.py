"""Recurrent layers: the LSTM of DeepOD's Trajectory Encoder (Eq. 12-16).

The paper encodes a spatio-temporal path — a sequence of concatenated
(tcode_i, D^s_i) vectors — with a standard LSTM and keeps the final hidden
state h_n as the sequence representation.  :class:`LSTMCell` implements one
unit exactly per Eq. 12-16; :class:`LSTM` unrolls it over a padded batch of
variable-length sequences and gathers h at each sequence's true last step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.contracts import shaped
from .init import ensure_generator
from .modules import Module, Parameter
from .tensor import Tensor, concat, stack


class LSTMCell(Module):
    """One LSTM unit (Eq. 12-16).

    Gate order inside the fused weight matrices is (forget, input, output,
    cell candidate), i.e. rows [0:H] compute f, [H:2H] compute i, [2H:3H]
    compute o and [3H:4H] compute the tanh candidate.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator,
                 forget_bias: float = 1.0):
        super().__init__()
        rng = ensure_generator(rng, "LSTMCell")
        self.input_size = input_size
        self.hidden_size = hidden_size
        k = 1.0 / np.sqrt(hidden_size)
        shape = (4 * hidden_size, input_size + hidden_size)
        self.weight = Parameter(rng.uniform(-k, k, size=shape))
        bias = rng.uniform(-k, k, size=(4 * hidden_size,))
        # Positive forget-gate bias is a standard stabilisation.
        bias[:hidden_size] += forget_bias
        self.bias = Parameter(bias)

    @shaped("(B, input_size), _ -> (B, hidden_size), (B, hidden_size)")
    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]
                ) -> Tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x: (batch, input_size) input D^st_j.
        state: (h_{j-1}, c_{j-1}) each (batch, hidden_size).

        Returns
        -------
        (h_j, c_j)
        """
        h_prev, c_prev = state
        zx = concat([x, h_prev], axis=-1)
        gates = zx @ self.weight.T + self.bias
        hs = self.hidden_size
        f = gates[:, 0 * hs:1 * hs].sigmoid()       # Eq. 12
        i = gates[:, 1 * hs:2 * hs].sigmoid()       # Eq. 13
        o = gates[:, 2 * hs:3 * hs].sigmoid()       # Eq. 14
        g = gates[:, 3 * hs:4 * hs].tanh()
        c = f * c_prev + i * g                      # Eq. 15
        h = o * c.tanh()                            # Eq. 16
        return h, c


class LSTM(Module):
    """Unrolled LSTM over padded batches of variable-length sequences."""

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.input_size = input_size

    @shaped("(B, T, input_size) -> (B, T, hidden_size), (B, hidden_size)")
    def forward(self, x: Tensor, lengths: Optional[Sequence[int]] = None
                ) -> Tuple[Tensor, Tensor]:
        """Run the LSTM over a (batch, time, input_size) tensor.

        Parameters
        ----------
        x:
            Padded input batch.
        lengths:
            True sequence lengths; padding steps beyond a sequence's length
            do not update its state.  Defaults to full length.

        Returns
        -------
        outputs: (batch, time, hidden) all hidden states (padded steps hold
            the carried-over state).
        final: (batch, hidden) h at each sequence's final true step — the
            h_n of Eq. 16 used by the Trajectory Encoder.
        """
        batch, steps, _ = x.shape
        if lengths is None:
            lengths = [steps] * batch
        lengths = np.asarray(lengths, dtype=np.int64)
        if len(lengths) != batch:
            raise ValueError("lengths must have one entry per batch row")
        if np.any(lengths < 1) or np.any(lengths > steps):
            raise ValueError("sequence lengths must be in [1, time]")

        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        outputs: List[Tensor] = []
        for t in range(steps):
            x_t = x[:, t, :]
            h_new, c_new = self.cell(x_t, (h, c))
            # Freeze state on padded steps: mask=1 while t < length.
            mask = Tensor((t < lengths).astype(np.float64)[:, None])
            h = h_new * mask + h * (1.0 - mask)
            c = c_new * mask + c * (1.0 - mask)
            outputs.append(h)
        stacked = stack(outputs, axis=1)
        return stacked, h
