"""Recurrent layers: the LSTM of DeepOD's Trajectory Encoder (Eq. 12-16).

The paper encodes a spatio-temporal path — a sequence of concatenated
(tcode_i, D^s_i) vectors — with a standard LSTM and keeps the final hidden
state h_n as the sequence representation.  :class:`LSTMCell` implements one
unit exactly per Eq. 12-16; :class:`LSTM` unrolls it over a padded batch of
variable-length sequences and gathers h at each sequence's true last step.

Two unroll engines are available (see :mod:`repro.nn.engine`): the
default ``"fast"`` path runs the whole batch through
:func:`~repro.nn.engine.lstm_sequence_fused` — one input-projection
GEMM plus a single hand-written BPTT node — while ``"reference"``
keeps the original one-:class:`LSTMCell`-call-per-timestep unroll as
the oracle the fused kernel is tested against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.contracts import shaped
from .engine import (
    lstm_sequence_fused, lstm_span_encode_fused, resolve_nn_engine,
    sequence_mask,
)
from .init import ensure_generator
from .modules import Module, Parameter
from .tensor import Tensor, concat, stack


class LSTMCell(Module):
    """One LSTM unit (Eq. 12-16).

    Gate order inside the fused weight matrices is (forget, input, output,
    cell candidate), i.e. rows [0:H] compute f, [H:2H] compute i, [2H:3H]
    compute o and [3H:4H] compute the tanh candidate.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator,
                 forget_bias: float = 1.0):
        super().__init__()
        rng = ensure_generator(rng, "LSTMCell")
        self.input_size = input_size
        self.hidden_size = hidden_size
        k = 1.0 / np.sqrt(hidden_size)
        shape = (4 * hidden_size, input_size + hidden_size)
        self.weight = Parameter(rng.uniform(-k, k, size=shape))
        bias = rng.uniform(-k, k, size=(4 * hidden_size,))
        # Positive forget-gate bias is a standard stabilisation.
        bias[:hidden_size] += forget_bias
        self.bias = Parameter(bias)

    @shaped("(B, input_size), _ -> (B, hidden_size), (B, hidden_size)")
    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]
                ) -> Tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x: (batch, input_size) input D^st_j.
        state: (h_{j-1}, c_{j-1}) each (batch, hidden_size).

        Returns
        -------
        (h_j, c_j)
        """
        h_prev, c_prev = state
        zx = concat([x, h_prev], axis=-1)
        gates = zx @ self.weight.T + self.bias
        hs = self.hidden_size
        f = gates[:, 0 * hs:1 * hs].sigmoid()       # Eq. 12
        i = gates[:, 1 * hs:2 * hs].sigmoid()       # Eq. 13
        o = gates[:, 2 * hs:3 * hs].sigmoid()       # Eq. 14
        g = gates[:, 3 * hs:4 * hs].tanh()
        c = f * c_prev + i * g                      # Eq. 15
        h = o * c.tanh()                            # Eq. 16
        return h, c


def _check_lengths(lengths: Optional[Sequence[int]], batch: int,
                   steps: int) -> np.ndarray:
    if lengths is None:
        lengths = [steps] * batch
    lengths = np.asarray(lengths, dtype=np.int64)
    if len(lengths) != batch:
        raise ValueError("lengths must have one entry per batch row")
    if np.any(lengths < 1) or np.any(lengths > steps):
        raise ValueError("sequence lengths must be in [1, time]")
    return lengths


def _check_state_dtype(tensor: Tensor, param: Parameter,
                       layer: str) -> None:
    """The recurrence must run in the parameter dtype end to end.

    Applied to the input before the fused kernel (whose buffers are
    allocated in the parameter dtype and would otherwise silently cast
    a mismatched input) and to the stacked outputs of the reference
    unroll (where a float64 input would silently upcast every
    activation of a float32 model).  Fail loudly instead so the caller
    fixes the input dtype.  (Dtype-neutral by construction —
    N001-clean: no literal dtype appears here.)
    """
    if tensor.dtype != param.dtype:
        raise TypeError(
            f"{layer} input/state dtype {tensor.dtype} does not match "
            f"the parameter dtype {param.dtype}; cast the inputs to the "
            f"parameter dtype instead of relying on silent casts")


class LSTM(Module):
    """Unrolled LSTM over padded batches of variable-length sequences.

    ``engine`` selects the fused batched kernel (``"fast"``, default)
    or the per-timestep reference unroll (``"reference"``); ``None``
    resolves via ``REPRO_NN_ENGINE``.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator,
                 engine: Optional[str] = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.input_size = input_size
        self.engine = resolve_nn_engine(engine)

    @shaped("(B, T, input_size) -> (B, T, hidden_size), (B, hidden_size)")
    def forward(self, x: Tensor, lengths: Optional[Sequence[int]] = None
                ) -> Tuple[Tensor, Tensor]:
        """Run the LSTM over a (batch, time, input_size) tensor.

        Parameters
        ----------
        x:
            Padded input batch.
        lengths:
            True sequence lengths; padding steps beyond a sequence's length
            do not update its state.  Defaults to full length.

        Returns
        -------
        outputs: (batch, time, hidden) all hidden states (padded steps hold
            the carried-over state).
        final: (batch, hidden) h at each sequence's final true step — the
            h_n of Eq. 16 used by the Trajectory Encoder.
        """
        batch, steps, _ = x.shape
        lengths = _check_lengths(lengths, batch, steps)
        if self.engine == "fast":
            _check_state_dtype(x, self.cell.weight, "LSTM")
            mask = sequence_mask(lengths, steps)
            stacked = lstm_sequence_fused(
                x, self.cell.weight, self.cell.bias, self.hidden_size,
                mask)
            # Masked steps carry state, so the last step holds each
            # row's true final hidden state.
            return stacked, stacked[:, steps - 1, :]
        return self._forward_reference(x, lengths)

    @shaped("(total, *), (total, *), _, _ -> (*, hidden_size)")
    def encode_spans(self, tcodes: Tensor, scodes: Tensor,
                     index_map: np.ndarray,
                     lengths: Sequence[int]) -> Tensor:
        """Fast-engine hot path: flat per-element codes straight to h_n.

        Equivalent to ``forward(concat([tcodes, scodes])[index_map],
        lengths)[1]`` without materialising the concatenation, the
        padded batch or the full output sequence (see
        :func:`~repro.nn.engine.lstm_span_encode_fused`).  Only valid
        on the fast engine — reference callers compose the per-op
        oracles instead.
        """
        if self.engine != "fast":
            raise RuntimeError(
                "LSTM.encode_spans is a fast-engine kernel; compose "
                "concat/gather/forward on the reference engine")
        batch, steps = index_map.shape
        lengths = _check_lengths(lengths, batch, steps)
        _check_state_dtype(tcodes, self.cell.weight, "LSTM")
        _check_state_dtype(scodes, self.cell.weight, "LSTM")
        return lstm_span_encode_fused(
            tcodes, scodes, self.cell.weight, self.cell.bias,
            self.hidden_size, lengths, index_map)

    def _forward_reference(self, x: Tensor, lengths: np.ndarray
                           ) -> Tuple[Tensor, Tensor]:
        """Oracle path: one :class:`LSTMCell` call per timestep."""
        batch, steps, _ = x.shape
        dtype = self.cell.weight.dtype
        h = Tensor(np.zeros((batch, self.hidden_size), dtype=dtype))
        c = Tensor(np.zeros((batch, self.hidden_size), dtype=dtype))
        outputs: List[Tensor] = []
        for t in range(steps):
            x_t = x[:, t, :]
            h_new, c_new = self.cell(x_t, (h, c))
            # Freeze state on padded steps: mask=1 while t < length.
            mask = Tensor((t < lengths).astype(dtype)[:, None])
            h = h_new * mask + h * (1.0 - mask)
            c = c_new * mask + c * (1.0 - mask)
            outputs.append(h)
        stacked = stack(outputs, axis=1)
        _check_state_dtype(stacked, self.cell.weight, "LSTM")
        return stacked, h
