"""Convolutional layers and batch normalisation.

The Time Interval Encoder (paper Eq. 5-8) stacks three convolutions over a
(1, Δd, d_t) tensor of time-slot embeddings — kernel shapes 3x1 (4 channels),
3x1 (8 channels) and 1x1 (1 channel) — with BatchNorm + ReLU between them and
a residual connection back onto the input.  The External Features Encoder
(Eq. 18) applies three Conv2d→BatchNorm2d→ReLU blocks to the traffic speed
matrix.  Both are built from the generic :class:`Conv2d` here, which uses an
im2col formulation so the autograd engine differentiates it for free.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..analysis.contracts import shaped
from .engine import (
    batchnorm2d_fused, conv2d_fused, conv_bn_relu_fused,
    interval_resnet_fused, resolve_nn_engine,
)
from .functional import pad2d
from .init import ensure_generator
from .modules import Module, Parameter
from .tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


def _im2col(x: Tensor, kh: int, kw: int, stride: Tuple[int, int]) -> Tuple[Tensor, int, int]:
    """Unfold (N, C, H, W) into (N, out_h*out_w, C*kh*kw) patches.

    Implemented with differentiable slicing + concat so gradients flow back
    to the input without a hand-written backward rule.
    """
    n, c, h, w = x.shape
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}) larger than padded input ({h}x{w})")
    # Gather strided patches with a single fancy-index per kernel offset.
    rows = []
    from .tensor import concat
    for di in range(kh):
        for dj in range(kw):
            patch = x[:, :, di:di + sh * out_h:sh, dj:dj + sw * out_w:sw]
            rows.append(patch.reshape(n, c, out_h * out_w, 1))
    # (N, C, L, kh*kw) -> (N, L, C*kh*kw)
    stacked = concat(rows, axis=3)
    cols = stacked.transpose((0, 2, 1, 3)).reshape(n, out_h * out_w, c * kh * kw)
    return cols, out_h, out_w


class Conv2d(Module):
    """2-D convolution ``(N, C_in, H, W) -> (N, C_out, H', W')``."""

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: IntPair, stride: IntPair = 1,
                 padding: IntPair = 0, bias: bool = True, *,
                 rng: np.random.Generator,
                 engine: Optional[str] = None):
        super().__init__()
        rng = ensure_generator(rng, "Conv2d")
        self.engine = resolve_nn_engine(engine)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        fan_in = in_channels * kh * kw
        bound = 1.0 / np.sqrt(fan_in)
        self.weight = Parameter(
            rng.uniform(-bound, bound,
                        size=(out_channels, in_channels, kh, kw)))
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                rng.uniform(-bound, bound, size=(out_channels,)))
        else:
            self.bias = None

    @shaped("(N, in_channels, *, *) -> (N, out_channels, *, *)")
    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects (N, C, H, W), got {x.shape}")
        if self.engine == "fast":
            return conv2d_fused(x, self.weight, self.bias, self.stride,
                                self.padding)
        return self._forward_reference(x)

    def _forward_reference(self, x: Tensor) -> Tensor:
        """Oracle path: differentiable slicing + concat im2col."""
        ph, pw = self.padding
        if ph or pw:
            x = pad2d(x, (ph, ph, pw, pw))
        kh, kw = self.kernel_size
        cols, out_h, out_w = _im2col(x, kh, kw, self.stride)
        flat_w = self.weight.reshape(self.out_channels,
                                     self.in_channels * kh * kw)
        out = cols @ flat_w.T                        # (N, L, C_out)
        if self.bias is not None:
            out = out + self.bias
        n = x.shape[0]
        return out.transpose((0, 2, 1)).reshape(
            n, self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding})")


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel, with running stats."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1, *,
                 engine: Optional[str] = None):
        super().__init__()
        self.engine = resolve_nn_engine(engine)
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got {x.shape}")
        axes = (0, 2, 3)
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self._update_running(mean, var)
            if self.engine == "fast":
                # One fused node: normalise + affine with hand-written
                # backward (the running stats above are engine-shared).
                return batchnorm2d_fused(x, self.weight, self.bias,
                                         self.eps)
            # Normalise with batch statistics via differentiable ops.
            mu = x.mean(axis=axes, keepdims=True)
            centered = x - mu
            variance = (centered ** 2).mean(axis=axes, keepdims=True)
            norm = centered / ((variance + self.eps) ** 0.5)
        else:
            mu = self.running_mean.reshape(1, -1, 1, 1)
            sigma = np.sqrt(self.running_var + self.eps).reshape(1, -1, 1, 1)
            norm = (x - Tensor(mu)) / Tensor(sigma)
        w = self.weight.reshape(1, self.num_features, 1, 1)
        b = self.bias.reshape(1, self.num_features, 1, 1)
        return norm * w + b

    def _update_running(self, mean: np.ndarray, var: np.ndarray) -> None:
        """Fold one batch's statistics into the running buffers — shared
        by both engines and by the fused Conv→BN→ReLU block."""
        m = self.momentum
        self.update_buffer(
            "running_mean", (1 - m) * self.running_mean + m * mean)
        self.update_buffer(
            "running_var", (1 - m) * self.running_var + m * var)


class ConvBNReLU(Module):
    """The Conv2d → BatchNorm2d → ReLU block of the traffic-condition CNN."""

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: IntPair = 3, stride: IntPair = 1,
                 padding: IntPair = 1, *,
                 rng: np.random.Generator,
                 engine: Optional[str] = None):
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, kernel_size,
                           stride=stride, padding=padding, rng=rng,
                           engine=engine)
        self.bn = BatchNorm2d(out_channels, engine=engine)

    def forward(self, x: Tensor) -> Tensor:
        if self.conv.engine == "fast" and self.training:
            out, mean, var = conv_bn_relu_fused(
                x, self.conv.weight, self.conv.bias, self.bn.weight,
                self.bn.bias, self.conv.stride, self.conv.padding,
                self.bn.eps)
            self.bn._update_running(mean, var)
            return out
        return self.bn(self.conv(x)).relu()


class IntervalResNetBlock(Module):
    """The residual CNN block of the Time Interval Encoder (Eq. 5-8).

    Input is a (N, 1, Δd, d_t) tensor of stacked time-slot embeddings.
    Three convolutions (3x1/4ch, 3x1/8ch, 1x1/1ch) with BatchNorm + ReLU
    after the first two, then a residual add back onto the input (Eq. 8).
    Padding of 1 along the Δd axis keeps the temporal length unchanged so
    the residual shapes agree.
    """

    def __init__(self, *, rng: np.random.Generator,
                 engine: Optional[str] = None):
        super().__init__()
        self.conv1 = Conv2d(1, 4, kernel_size=(3, 1), padding=(1, 0),
                            rng=rng, engine=engine)
        self.bn1 = BatchNorm2d(4, engine=engine)
        self.conv2 = Conv2d(4, 8, kernel_size=(3, 1), padding=(1, 0),
                            rng=rng, engine=engine)
        self.bn2 = BatchNorm2d(8, engine=engine)
        self.conv3 = Conv2d(8, 1, kernel_size=(1, 1), rng=rng,
                            engine=engine)

    @shaped("(N, 1, S, D) -> (N, 1, S, D)")
    def forward(self, x: Tensor, mask: Optional[Tensor] = None) -> Tensor:
        """Apply the block.

        Parameters
        ----------
        mask:
            Optional (N, 1, Δd, 1) tensor of 1s on valid slot rows and 0s
            on padding.  When batching intervals of different Δd the 3x1
            convolutions would otherwise leak activations from padded rows
            into real ones; re-masking after every convolution makes each
            row's output independent of batchmates.
        """
        if x.ndim != 4 or x.shape[1] != 1:
            raise ValueError(
                f"IntervalResNetBlock expects (N, 1, Δd, d_t), got {x.shape}")
        if self.conv1.engine == "fast" and self.training:
            # The whole block — input mask, both Conv→BN→ReLU(→mask)
            # stages, 1x1 conv and residual — as one autograd node in
            # transpose-free (N, Δd, d_t, C) layout.
            out, m1, v1, m2, v2 = interval_resnet_fused(
                x, self.conv1.weight, self.conv1.bias,
                self.bn1.weight, self.bn1.bias,
                self.conv2.weight, self.conv2.bias,
                self.bn2.weight, self.bn2.bias,
                self.conv3.weight, self.conv3.bias,
                self.bn1.eps, self.bn2.eps,
                mask=None if mask is None else mask.data)
            self.bn1._update_running(m1, v1)
            self.bn2._update_running(m2, v2)
            return out
        if mask is not None:
            x = x * mask
        z1 = self.bn1(self.conv1(x)).relu()          # Eq. 5
        if mask is not None:
            z1 = z1 * mask
        z2 = self.bn2(self.conv2(z1)).relu()         # Eq. 6
        if mask is not None:
            z2 = z2 * mask
        z3 = self.conv3(z2)                          # Eq. 7
        return x + z3                                # Eq. 8 (residual)
