"""Parameter initialisation schemes.

Algorithm 1 (line 5) initialises non-embedding parameters "with normal
distribution"; we also provide the Xavier/Glorot and Kaiming variants that
PyTorch's Linear/LSTM defaults correspond to, so experiments can be run with
either choice.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def ensure_generator(rng, owner: str) -> np.random.Generator:
    """Reject anything that is not an explicit ``np.random.Generator``.

    Randomised components must be handed a seeded Generator by their
    caller (reprolint rule D002); accepting ``None`` and silently
    falling back to entropy-seeded draws made runs irreproducible, and
    a shared seeded fallback would make sibling layers identical.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            f"{owner} requires an explicit np.random.Generator (got "
            f"{type(rng).__name__}); thread a seeded Generator from the "
            f"caller, e.g. np.random.default_rng(seed)")
    return rng


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.01) -> np.ndarray:
    """Plain normal initialisation (Algorithm 1, line 5)."""
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...],
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    nonlinearity: str = "relu") -> np.ndarray:
    """He uniform, suitable for ReLU stacks such as MLP1/MLP2."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform_fan_in(shape: Tuple[int, ...],
                   rng: np.random.Generator) -> np.ndarray:
    """PyTorch Linear default: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    fan_in, _ = _fans(shape)
    bound = 1.0 / np.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        # Linear weights are stored (out_features, in_features).
        return shape[1], shape[0]
    # Conv kernels: (out_channels, in_channels, *spatial).
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
