"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These free functions mirror the operations DeepOD's equations use:
activations (Eq. 9, 12-16), losses (MAE main loss, Euclidean auxiliary loss
of Algorithm 1), padding and pooling used by the Time Interval Encoder
(Eq. 5-10) and the External Features Encoder (Eq. 18).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor, concat, stack  # noqa: F401  (re-exported)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, Eq. 9 of the paper."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``.

    Whenever a mask is actually drawn the caller must supply a seeded
    Generator (reprolint D002): dropout masks are part of the training
    stream, so an entropy-seeded fallback here would make
    otherwise-identical runs diverge.  The identity paths (eval mode,
    ``p == 0``) draw nothing and accept ``rng=None``.
    """
    if not training or p <= 0.0:
        return x
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            "dropout requires an explicit np.random.Generator when a mask "
            f"is drawn (got {type(rng).__name__})")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


# ----------------------------------------------------------------------
# Losses
#
# Each loss has two implementations: the original per-op chain (kept as
# the ``*_reference`` oracle, also the default under the bare name for
# backwards compatibility) and a ``*_fused`` single-autograd-node twin
# whose backward is written by hand.  The fast nn engine dispatches to
# the fused forms (see ``DeepOD.training_losses``); fused buffers keep
# the input dtype so a float32 model never silently upcasts.
# ----------------------------------------------------------------------
def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error — the paper's main loss (Algorithm 1, line 11)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (pred - target).abs().mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    return ((pred - target) ** 2).mean()


def euclidean_loss(a: Tensor, b: Tensor) -> Tensor:
    """Batch-mean Euclidean distance, the auxiliary loss of Algorithm 1.

    ``auxiliaryloss = sqrt(sum_j (code[j] - stcode[j])^2)`` averaged over
    the batch dimension so its scale is comparable with the main loss.
    """
    diff = a - b
    sq = (diff ** 2).sum(axis=-1)
    # Epsilon keeps the sqrt differentiable when code == stcode exactly.
    return ((sq + 1e-12) ** 0.5).mean()


def smooth_l1_loss(pred: Tensor, target: Tensor, beta: float = 1.0) -> Tensor:
    """Huber-style loss used for robustness experiments."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    abs_diff = diff.abs()
    quad_mask = Tensor((abs_diff.data < beta).astype(np.float64))
    lin_mask = Tensor((abs_diff.data >= beta).astype(np.float64))
    quad = (diff ** 2) * (0.5 / beta) * quad_mask
    lin = (abs_diff - 0.5 * beta) * lin_mask
    return (quad + lin).mean()


# Reference aliases, mirroring the embedding engine's naming scheme.
mae_loss_reference = mae_loss
mse_loss_reference = mse_loss
euclidean_loss_reference = euclidean_loss
smooth_l1_loss_reference = smooth_l1_loss


def mae_loss_fused(pred: Tensor, target: Tensor) -> Tensor:
    """Single-node mean absolute error (fast-engine twin of
    :func:`mae_loss`)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred.data - target.data
    out = np.abs(diff).mean()

    def backward(grad):
        g = grad * np.sign(diff) / diff.size
        return g, -g

    return Tensor._make(np.asarray(out), (pred, target), backward)


def euclidean_loss_fused(a: Tensor, b: Tensor) -> Tensor:
    """Single-node batch-mean Euclidean distance (twin of
    :func:`euclidean_loss`, same epsilon)."""
    diff = a.data - b.data
    dist = np.sqrt((diff * diff).sum(axis=-1) + 1e-12)
    out = dist.mean()

    def backward(grad):
        g = grad * diff / (dist[..., None] * dist.size)
        return g, -g

    return Tensor._make(np.asarray(out), (a, b), backward)


def smooth_l1_loss_fused(pred: Tensor, target: Tensor,
                         beta: float = 1.0) -> Tensor:
    """Single-node Huber-style loss (twin of :func:`smooth_l1_loss`;
    the ``|diff| == beta`` tie takes the linear branch, as there)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred.data - target.data
    abs_diff = np.abs(diff)
    quad = abs_diff < beta
    out = np.where(quad, diff * diff * (0.5 / beta),
                   abs_diff - 0.5 * beta).mean()

    def backward(grad):
        g = grad * np.where(quad, diff / beta,
                            np.sign(diff)) / diff.size
        return g, -g

    return Tensor._make(np.asarray(out), (pred, target), backward)


# ----------------------------------------------------------------------
# Padding / pooling helpers used by the CNN encoders
# ----------------------------------------------------------------------
def pad2d(x: Tensor, pad: Tuple[int, int, int, int]) -> Tensor:
    """Zero-pad the last two axes of ``x`` by (top, bottom, left, right)."""
    top, bottom, left, right = pad
    if top == bottom == left == right == 0:
        return x
    pad_width = [(0, 0)] * (x.ndim - 2) + [(top, bottom), (left, right)]
    out_data = np.pad(x.data, pad_width)

    slices = tuple([slice(None)] * (x.ndim - 2) +
                   [slice(top, out_data.shape[-2] - bottom),
                    slice(left, out_data.shape[-1] - right)])

    def backward(grad):
        return (grad[slices],)

    return Tensor._make(out_data, (x,), backward)


def avg_pool_over_axis(x: Tensor, axis: int) -> Tensor:
    """Average-pool away one axis (Eq. 10: column means of Z4)."""
    return x.mean(axis=axis)


def masked_mean_pool(x: Tensor, mask: np.ndarray) -> Tensor:
    """Masked average pool over the time axis as a single node.

    ``x`` is (B, T, D), ``mask`` a (B, T) 0/1 array; returns the
    (B, D) mean of each row's unmasked steps.  The fast-engine twin of
    the ``(x * mask).sum(1) / counts`` chain used by the Time Interval
    Encoder (Eq. 10) and the mean-pooling sequence ablation.
    """
    weights = mask / mask.sum(axis=1, keepdims=True)    # (B, T)
    out = np.einsum("btd,bt->bd", x.data, weights)

    def backward(grad):
        return (grad[:, None, :] * weights[:, :, None],)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the trailing two spatial axes (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(-2, -1))
