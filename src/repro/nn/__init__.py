"""``repro.nn`` — a from-scratch reverse-mode autograd + neural-network
framework on numpy.

This package substitutes for PyTorch 1.0 (which the paper uses but which is
unavailable offline); it implements exactly the layers DeepOD's equations
require: Linear/MLP (Eq. 11, 17-20), LSTM (Eq. 12-16), Conv2d + BatchNorm2d
and the interval ResNet block (Eq. 5-8), embeddings-as-one-hot-products
(Eq. 1), Adam with step decay (Section 6.1), and MAE / Euclidean losses
(Algorithm 1).
"""

from .tensor import Tensor, concat, stack, zeros, ones, unbroadcast
from .engine import (
    NN_ENGINES, default_nn_engine, resolve_nn_engine, sequence_mask,
    lstm_sequence_fused, lstm_span_encode_fused, gru_sequence_fused,
    conv2d_fused,
    batchnorm2d_fused, conv_bn_relu_fused, interval_resnet_fused,
    mlp2_fused, validate_bench_fit, validate_bench_fit_file,
)
from .functional import (
    relu, sigmoid, tanh, softmax, log_softmax, dropout,
    mae_loss, mse_loss, euclidean_loss, smooth_l1_loss,
    mae_loss_reference, mse_loss_reference, euclidean_loss_reference,
    smooth_l1_loss_reference,
    mae_loss_fused, euclidean_loss_fused, smooth_l1_loss_fused,
    pad2d, avg_pool_over_axis, masked_mean_pool, global_avg_pool2d,
)
from .modules import (
    Parameter, Module, Linear, TwoLayerMLP, Sequential, ReLU, Tanh,
    Embedding, LayerNorm, Dropout,
)
from .rnn import LSTMCell, LSTM
from .gru import GRU, GRUCell
from .conv import Conv2d, BatchNorm2d, ConvBNReLU, IntervalResNetBlock
from .optim import (
    Optimizer, SGD, Adam, RMSProp, AdaGrad, StepDecay, CosineDecay,
    EarlyStopping,
)
from .serialization import (
    save_arrays, load_arrays, save_state, load_state, state_dict_bytes,
    parameter_count,
)
from .gradcheck import check_gradient, check_module_gradients, numeric_gradient

__all__ = [
    "Tensor", "concat", "stack", "zeros", "ones", "unbroadcast",
    "NN_ENGINES", "default_nn_engine", "resolve_nn_engine",
    "sequence_mask", "lstm_sequence_fused", "lstm_span_encode_fused",
    "gru_sequence_fused",
    "conv2d_fused", "batchnorm2d_fused", "conv_bn_relu_fused",
    "interval_resnet_fused", "mlp2_fused",
    "validate_bench_fit", "validate_bench_fit_file",
    "relu", "sigmoid", "tanh", "softmax", "log_softmax", "dropout",
    "mae_loss", "mse_loss", "euclidean_loss", "smooth_l1_loss",
    "mae_loss_reference", "mse_loss_reference",
    "euclidean_loss_reference", "smooth_l1_loss_reference",
    "mae_loss_fused", "euclidean_loss_fused", "smooth_l1_loss_fused",
    "pad2d", "avg_pool_over_axis", "masked_mean_pool",
    "global_avg_pool2d",
    "Parameter", "Module", "Linear", "TwoLayerMLP", "Sequential",
    "ReLU", "Tanh", "Embedding", "LayerNorm", "Dropout",
    "LSTMCell", "LSTM", "GRU", "GRUCell",
    "Conv2d", "BatchNorm2d", "ConvBNReLU", "IntervalResNetBlock",
    "Optimizer", "SGD", "Adam", "RMSProp", "AdaGrad", "StepDecay",
    "CosineDecay", "EarlyStopping",
    "save_arrays", "load_arrays", "save_state", "load_state",
    "state_dict_bytes", "parameter_count",
    "check_gradient", "check_module_gradients", "numeric_gradient",
]
