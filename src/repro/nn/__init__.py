"""``repro.nn`` — a from-scratch reverse-mode autograd + neural-network
framework on numpy.

This package substitutes for PyTorch 1.0 (which the paper uses but which is
unavailable offline); it implements exactly the layers DeepOD's equations
require: Linear/MLP (Eq. 11, 17-20), LSTM (Eq. 12-16), Conv2d + BatchNorm2d
and the interval ResNet block (Eq. 5-8), embeddings-as-one-hot-products
(Eq. 1), Adam with step decay (Section 6.1), and MAE / Euclidean losses
(Algorithm 1).
"""

from .tensor import Tensor, concat, stack, zeros, ones, unbroadcast
from .functional import (
    relu, sigmoid, tanh, softmax, log_softmax, dropout,
    mae_loss, mse_loss, euclidean_loss, smooth_l1_loss,
    pad2d, avg_pool_over_axis, global_avg_pool2d,
)
from .modules import (
    Parameter, Module, Linear, TwoLayerMLP, Sequential, ReLU, Tanh,
    Embedding, LayerNorm, Dropout,
)
from .rnn import LSTMCell, LSTM
from .gru import GRU, GRUCell
from .conv import Conv2d, BatchNorm2d, ConvBNReLU, IntervalResNetBlock
from .optim import (
    Optimizer, SGD, Adam, RMSProp, AdaGrad, StepDecay, CosineDecay,
    EarlyStopping,
)
from .serialization import (
    save_arrays, load_arrays, save_state, load_state, state_dict_bytes,
    parameter_count,
)
from .gradcheck import check_gradient, check_module_gradients, numeric_gradient

__all__ = [
    "Tensor", "concat", "stack", "zeros", "ones", "unbroadcast",
    "relu", "sigmoid", "tanh", "softmax", "log_softmax", "dropout",
    "mae_loss", "mse_loss", "euclidean_loss", "smooth_l1_loss",
    "pad2d", "avg_pool_over_axis", "global_avg_pool2d",
    "Parameter", "Module", "Linear", "TwoLayerMLP", "Sequential",
    "ReLU", "Tanh", "Embedding", "LayerNorm", "Dropout",
    "LSTMCell", "LSTM", "GRU", "GRUCell",
    "Conv2d", "BatchNorm2d", "ConvBNReLU", "IntervalResNetBlock",
    "Optimizer", "SGD", "Adam", "RMSProp", "AdaGrad", "StepDecay",
    "CosineDecay", "EarlyStopping",
    "save_arrays", "load_arrays", "save_state", "load_state",
    "state_dict_bytes", "parameter_count",
    "check_gradient", "check_module_gradients", "numeric_gradient",
]
