"""Numerical gradient checking, exposed as a public utility.

The internal test-suite uses finite differences to validate every autograd
rule; downstream users extending ``repro.nn`` with new ops get the same
tooling here.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from .modules import Module
from .tensor import Tensor


def numeric_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar function at ``x``.

    ``fn`` must treat its argument as read-only apart from the in-place
    perturbation this routine performs and undoes.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(op: Callable[[Tensor], Tensor], x: np.ndarray,
                   atol: float = 1e-6, eps: float = 1e-6) -> bool:
    """Compare ``op``'s analytic input gradient with finite differences.

    Parameters
    ----------
    op:
        A function mapping a Tensor to a Tensor; its output is summed to a
        scalar before differentiation.
    x:
        The input point.  Avoid non-differentiable points (e.g. 0 for
        ReLU/abs) — finite differences straddle them.

    Returns
    -------
    True when the gradients agree within ``atol``; raises AssertionError
    with the mismatch otherwise.
    """
    x = np.asarray(x, dtype=np.float64)

    def scalar_fn(arr: np.ndarray) -> float:
        return float(op(Tensor(arr)).sum().data)

    t = Tensor(x.copy(), requires_grad=True)
    op(t).sum().backward()
    if t.grad is None:
        raise AssertionError("op produced no gradient for its input")
    expected = numeric_gradient(scalar_fn, x.copy(), eps=eps)
    np.testing.assert_allclose(t.grad, expected, atol=atol)
    return True


def check_module_gradients(module: Module, x: np.ndarray,
                           atol: float = 1e-5,
                           eps: float = 1e-6) -> bool:
    """Finite-difference check of every parameter gradient of ``module``.

    The module is evaluated in eval() mode so stochastic layers (dropout)
    and batch statistics do not break the comparison.
    """
    was_training = module.training
    module.eval()
    try:
        inp = Tensor(np.asarray(x, dtype=np.float64))
        module.zero_grad()
        module(inp).sum().backward()
        for name, param in module.named_parameters():
            analytic = param.grad
            if analytic is None:
                analytic = np.zeros_like(param.data)

            def scalar_fn(arr, _param=param):
                return float(module(inp).sum().data)

            numeric = numeric_gradient(scalar_fn, param.data, eps=eps)
            np.testing.assert_allclose(
                analytic, numeric, atol=atol,
                err_msg=f"gradient mismatch for parameter {name!r}")
    finally:
        module.train(was_training)
    return True
