"""Road network model (paper Section 2).

A road network is a directed, weighted graph ``G = <V, E>``: each edge is a
road segment ``e_k = <v1_k -> v-1_k, w_k>`` with a length weight, each vertex
an end point.  :class:`RoadNetwork` stores vertices with planar coordinates
(metres, a local projection of lon/lat) and provides the adjacency views the
rest of the system needs: outgoing/incoming edges, edge lookup by endpoint
pair, and geometric helpers (edge length, point projection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Vertex:
    """A road-segment end point with planar coordinates in metres."""

    vertex_id: int
    x: float
    y: float

    @property
    def xy(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Edge:
    """A directed road segment ``<v1, v-1>`` with a length weight in metres.

    ``speed_limit`` (m/s) carries the free-flow speed used by the traffic
    simulator; ``road_class`` distinguishes arterials from side streets.
    """

    edge_id: int
    start: int
    end: int
    length: float
    speed_limit: float = 13.9        # ~50 km/h default
    road_class: str = "street"

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError(f"edge {self.edge_id} has non-positive length")
        if self.speed_limit <= 0:
            raise ValueError(f"edge {self.edge_id} has non-positive speed")


class RoadNetwork:
    """Directed weighted road graph with geometry.

    Vertices and edges are stored in insertion order; ``edge_id`` values are
    dense ``0..|E|-1`` so they double as indices into embedding matrices
    (Eq. 1 identifies each road segment by a unique id).
    """

    def __init__(self) -> None:
        self._vertices: Dict[int, Vertex] = {}
        self._edges: List[Edge] = []
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        self._by_endpoints: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id: int, x: float, y: float) -> Vertex:
        if vertex_id in self._vertices:
            raise ValueError(f"duplicate vertex id {vertex_id}")
        vertex = Vertex(vertex_id, float(x), float(y))
        self._vertices[vertex_id] = vertex
        self._out.setdefault(vertex_id, [])
        self._in.setdefault(vertex_id, [])
        return vertex

    def add_edge(self, start: int, end: int, length: Optional[float] = None,
                 speed_limit: float = 13.9,
                 road_class: str = "street") -> Edge:
        if start not in self._vertices or end not in self._vertices:
            raise KeyError(f"unknown endpoint in edge <{start}, {end}>")
        if (start, end) in self._by_endpoints:
            raise ValueError(f"duplicate edge <{start}, {end}>")
        if start == end:
            raise ValueError("self-loop road segments are not supported")
        if length is None:
            length = self.euclidean(start, end)
        edge = Edge(len(self._edges), start, end, float(length),
                    float(speed_limit), road_class)
        self._edges.append(edge)
        self._out[start].append(edge.edge_id)
        self._in[end].append(edge.edge_id)
        self._by_endpoints[(start, end)] = edge.edge_id
        return edge

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex(self, vertex_id: int) -> Vertex:
        return self._vertices[vertex_id]

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def edge(self, edge_id: int) -> Edge:
        return self._edges[edge_id]

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def edge_between(self, start: int, end: int) -> Optional[Edge]:
        edge_id = self._by_endpoints.get((start, end))
        return None if edge_id is None else self._edges[edge_id]

    def out_edges(self, vertex_id: int) -> List[Edge]:
        return [self._edges[eid] for eid in self._out[vertex_id]]

    def in_edges(self, vertex_id: int) -> List[Edge]:
        return [self._edges[eid] for eid in self._in[vertex_id]]

    def successors(self, edge_id: int) -> List[Edge]:
        """Edges that can directly follow ``edge_id`` on a path."""
        return self.out_edges(self._edges[edge_id].end)

    def euclidean(self, v1: int, v2: int) -> float:
        a, b = self._vertices[v1], self._vertices[v2]
        return float(np.hypot(a.x - b.x, a.y - b.y))

    def edge_vector(self, edge_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Start and end coordinates of an edge as arrays."""
        edge = self._edges[edge_id]
        a, b = self._vertices[edge.start], self._vertices[edge.end]
        return np.array(a.xy), np.array(b.xy)

    def point_at_ratio(self, edge_id: int, ratio: float) -> Tuple[float, float]:
        """Coordinates of the point a fraction ``ratio`` along an edge."""
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        a, b = self.edge_vector(edge_id)
        point = a + ratio * (b - a)
        return (float(point[0]), float(point[1]))

    def project_point(self, edge_id: int, x: float, y: float
                      ) -> Tuple[float, float]:
        """Project (x, y) onto an edge; returns (distance, ratio).

        ``ratio`` is the normalised position of the closest point along the
        segment — exactly the r[1] / r[-1] ratios of Definition 1.
        """
        edge = self._edges[edge_id]
        va = self._vertices[edge.start]
        vb = self._vertices[edge.end]
        dx, dy = vb.x - va.x, vb.y - va.y
        # Expanded scalar arithmetic (no 2-vector dots): keeps this
        # allocation-free and bit-identical to the vectorised
        # ``SpatialIndex.project_batch``, whose expressions mirror these.
        seg_len_sq = dx * dx + dy * dy
        t = ((x - va.x) * dx + (y - va.y) * dy) / seg_len_sq
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        return (float(np.hypot(x - (va.x + t * dx), y - (va.y + t * dy))),
                float(t))

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) over all vertices."""
        xs = [v.x for v in self._vertices.values()]
        ys = [v.y for v in self._vertices.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    def total_length(self) -> float:
        return sum(e.length for e in self._edges)

    def __repr__(self) -> str:
        return (f"RoadNetwork(|V|={self.num_vertices}, "
                f"|E|={self.num_edges})")
