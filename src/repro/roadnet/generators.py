"""Synthetic road-network generators.

The paper extracts its road networks from OpenStreetMap (CRN: 3,191 vertices
/ 9,468 edges; XRN: 4,576 / 12,668; BRN: 82,576 / 241,105).  OSM extracts
are unavailable offline, so :func:`grid_city` synthesises structurally
similar city networks: a perturbed grid of two-way streets, a subset of
wider arterials with higher speed limits, random one-way conversions and
random edge removals so the graph is not a perfect lattice.  Connectivity of
the largest strongly connected component is guaranteed by construction
checks so that routing between sampled OD pairs always succeeds.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from .graph import RoadNetwork

ARTERIAL_SPEED = 16.7     # 60 km/h
STREET_SPEED = 11.1       # 40 km/h


def grid_city(rows: int, cols: int, block_size: float = 200.0,
              jitter: float = 0.15, oneway_fraction: float = 0.1,
              removal_fraction: float = 0.05,
              arterial_every: int = 4,
              river_row: Optional[int] = None,
              bridge_cols: Tuple[int, ...] = (),
              seed: int = 0) -> RoadNetwork:
    """Generate a perturbed-grid city network.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the network has ``rows * cols`` vertices.
    block_size:
        Nominal block edge length in metres.
    jitter:
        Vertex positions are perturbed by up to ``jitter * block_size`` so
        edges have heterogeneous lengths.
    oneway_fraction:
        Fraction of street pairs converted to one-way.
    removal_fraction:
        Fraction of candidate street pairs removed entirely (never
        arterials, so connectivity survives).
    arterial_every:
        Every ``arterial_every``-th row/column becomes an arterial with a
        higher speed limit.
    river_row:
        When set, a river runs between grid rows ``river_row`` and
        ``river_row + 1``: every crossing is removed except at the
        ``bridge_cols`` columns.  This decorrelates Euclidean distance
        from route distance, as in real river cities (Chengdu's Jin
        River, Xi'an's moat) — trips crossing the river must detour to a
        bridge, which coordinate-based features cannot see.
    bridge_cols:
        Columns where bridges cross the river (required with river_row).
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_city needs at least a 2x2 grid")
    if river_row is not None:
        if not 0 <= river_row < rows - 1:
            raise ValueError("river_row must be inside the grid")
        if not bridge_cols:
            raise ValueError("a river needs at least one bridge column")
        if any(not 0 <= c < cols for c in bridge_cols):
            raise ValueError("bridge columns must be inside the grid")
    rng = np.random.default_rng(seed)
    net = RoadNetwork()

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            dx, dy = rng.uniform(-jitter, jitter, size=2) * block_size
            net.add_vertex(vid(r, c), c * block_size + dx, r * block_size + dy)

    def is_arterial(r_a, c_a, r_b, c_b) -> bool:
        if r_a == r_b and r_a % arterial_every == 0:
            return True
        if c_a == c_b and c_a % arterial_every == 0:
            return True
        return False

    # Collect undirected street pairs first so removals/oneways are chosen
    # uniformly over them.
    pairs = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                pairs.append(((r, c), (r, c + 1)))
            if r + 1 < rows:
                pairs.append(((r, c), (r + 1, c)))

    def crosses_river(ra, ca, rb, cb) -> bool:
        if river_row is None or ca != cb:
            return False
        lo, hi = min(ra, rb), max(ra, rb)
        return lo == river_row and hi == river_row + 1 \
            and ca not in bridge_cols

    def is_bridge(ra, ca, rb, cb) -> bool:
        if river_row is None or ca != cb:
            return False
        lo, hi = min(ra, rb), max(ra, rb)
        return lo == river_row and hi == river_row + 1 and ca in bridge_cols

    for (ra, ca), (rb, cb) in pairs:
        if crosses_river(ra, ca, rb, cb):
            continue
        arterial = is_arterial(ra, ca, rb, cb)
        bridge = is_bridge(ra, ca, rb, cb)
        a, b = vid(ra, ca), vid(rb, cb)
        # Bridges are protected: never removed, never one-way, so the two
        # banks always stay mutually reachable through them.
        if bridge:
            net.add_edge(a, b, speed_limit=ARTERIAL_SPEED,
                         road_class="bridge")
            net.add_edge(b, a, speed_limit=ARTERIAL_SPEED,
                         road_class="bridge")
            continue
        if not arterial and rng.random() < removal_fraction:
            continue
        speed = ARTERIAL_SPEED if arterial else STREET_SPEED
        road_class = "arterial" if arterial else "street"
        if not arterial and rng.random() < oneway_fraction:
            # One-way: random direction.
            if rng.random() < 0.5:
                a, b = b, a
            net.add_edge(a, b, speed_limit=speed, road_class=road_class)
        else:
            net.add_edge(a, b, speed_limit=speed, road_class=road_class)
            net.add_edge(b, a, speed_limit=speed, road_class=road_class)

    _ensure_strong_connectivity(net)
    return net


def _ensure_strong_connectivity(net: RoadNetwork) -> None:
    """Add reverse edges until the graph is strongly connected.

    Random one-way conversion can strand pockets of the grid; rather than
    rejecting samples we repair by adding the reverse of existing boundary
    edges, which keeps the network realistic (converting a one-way street
    back to two-way).
    """
    for _ in range(net.num_edges):
        component = _reachable_from(net, 0)
        if len(component) == net.num_vertices:
            reverse = _reaching_to(net, 0)
            if len(reverse) == net.num_vertices:
                return
            missing = set(range(net.num_vertices)) - reverse
        else:
            missing = set(range(net.num_vertices)) - component
        repaired = False
        for edge in list(net.edges()):
            crosses = ((edge.start in missing) != (edge.end in missing))
            if crosses and net.edge_between(edge.end, edge.start) is None:
                net.add_edge(edge.end, edge.start, length=edge.length,
                             speed_limit=edge.speed_limit,
                             road_class=edge.road_class)
                repaired = True
                break
        if not repaired:
            raise RuntimeError("could not repair connectivity")
    raise RuntimeError("connectivity repair did not converge")


def _reachable_from(net: RoadNetwork, source: int) -> Set[int]:
    seen = {source}
    stack = [source]
    while stack:
        v = stack.pop()
        for edge in net.out_edges(v):
            if edge.end not in seen:
                seen.add(edge.end)
                stack.append(edge.end)
    return seen


def _reaching_to(net: RoadNetwork, target: int) -> Set[int]:
    seen = {target}
    stack = [target]
    while stack:
        v = stack.pop()
        for edge in net.in_edges(v):
            if edge.start not in seen:
                seen.add(edge.start)
                stack.append(edge.start)
    return seen
