"""Uniform-grid spatial index over road-network edges.

Supports the two geometric queries the system needs:

* nearest-edge / k-nearest-edge search — used when matching the OD input's
  GPS points onto road segments (Section 3: "for g[1] and g[-1] that are two
  end points matched on road segments"), and for map-matching candidate
  generation;
* radius search — used by the HMM matcher to enumerate candidate segments
  within a GPS error radius.

Edges are binned into every grid cell their bounding box overlaps; queries
expand rings of cells outward until a hit is guaranteed correct.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import RoadNetwork


class SpatialIndex:
    """Grid index over the edges of a :class:`RoadNetwork`."""

    def __init__(self, net: RoadNetwork, cell_size: float = 250.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.net = net
        self.cell_size = float(cell_size)
        min_x, min_y, max_x, max_y = net.bounding_box()
        # Pad so boundary points hash into valid cells.
        self.min_x = min_x - cell_size
        self.min_y = min_y - cell_size
        self.cols = int(np.ceil((max_x - self.min_x) / cell_size)) + 2
        self.rows = int(np.ceil((max_y - self.min_y) / cell_size)) + 2
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for edge in net.edges():
            for cell in self._edge_cells(edge.edge_id):
                self._cells[cell].append(edge.edge_id)
        # Per-edge segment geometry for batch projection; built lazily on
        # the first radius query (point queries stay allocation-free).
        self._geom: Optional[Tuple[np.ndarray, ...]] = None

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (int((x - self.min_x) // self.cell_size),
                int((y - self.min_y) // self.cell_size))

    def _query_cell(self, x: float, y: float) -> Tuple[int, int]:
        """Cell to start a search from; clamped so far-away query points
        still walk outward over the populated grid."""
        cx, cy = self._cell_of(x, y)
        return (int(np.clip(cx, 0, self.cols - 1)),
                int(np.clip(cy, 0, self.rows - 1)))

    def _edge_cells(self, edge_id: int) -> List[Tuple[int, int]]:
        a, b = self.net.edge_vector(edge_id)
        cx0, cy0 = self._cell_of(min(a[0], b[0]), min(a[1], b[1]))
        cx1, cy1 = self._cell_of(max(a[0], b[0]), max(a[1], b[1]))
        return [(cx, cy)
                for cx in range(cx0, cx1 + 1)
                for cy in range(cy0, cy1 + 1)]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_edge(self, x: float, y: float) -> Tuple[int, float, float]:
        """Closest edge to (x, y).

        Returns (edge_id, distance, ratio) where ``ratio`` is the projection
        position along the edge (Definition 1's position ratio).
        """
        hits = self.k_nearest_edges(x, y, k=1)
        if not hits:
            raise ValueError("spatial index is empty")
        return hits[0]

    def k_nearest_edges(self, x: float, y: float, k: int = 5
                        ) -> List[Tuple[int, float, float]]:
        """k closest edges, sorted by distance."""
        if k < 1:
            raise ValueError("k must be >= 1")
        cx, cy = self._query_cell(x, y)
        best: List[Tuple[float, int, float]] = []
        seen: set[int] = set()
        max_radius = max(self.rows, self.cols)
        for ring in range(max_radius + 1):
            for cell in self._ring_cells(cx, cy, ring):
                for eid in self._cells.get(cell, ()):
                    if eid in seen:
                        continue
                    seen.add(eid)
                    dist, ratio = self.net.project_point(eid, x, y)
                    best.append((dist, eid, ratio))
            if len(best) >= k:
                best.sort()
                # Correctness guard: a candidate at distance d is only
                # final once the searched ring covers radius d.
                kth = best[min(k, len(best)) - 1][0]
                if kth <= (ring) * self.cell_size:
                    break
        best.sort()
        return [(eid, dist, ratio) for dist, eid, ratio in best[:k]]

    def project_batch(self, edge_ids: np.ndarray, x: float, y: float
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`RoadNetwork.project_point` over many edges.

        Returns (distances, ratios) arrays aligned with ``edge_ids``,
        bit-identical to per-edge scalar projection (same expression
        order; two-term dots expand to the same ``x*x + y*y``).
        """
        if self._geom is None:
            num = self.net.num_edges
            ax = np.empty(num)
            ay = np.empty(num)
            dx = np.empty(num)
            dy = np.empty(num)
            for eid in range(num):
                a, b = self.net.edge_vector(eid)
                ax[eid], ay[eid] = a
                dx[eid], dy[eid] = b[0] - a[0], b[1] - a[1]
            self._geom = (ax, ay, dx, dy, dx * dx + dy * dy)
        ax, ay, dx, dy, seg_len_sq = self._geom
        e = np.asarray(edge_ids, dtype=np.int64)
        eax, eay, edx, edy = ax[e], ay[e], dx[e], dy[e]
        t = np.clip(((x - eax) * edx + (y - eay) * edy) / seg_len_sq[e],
                    0.0, 1.0)
        dist = np.hypot(x - (eax + t * edx), y - (eay + t * edy))
        return dist, t

    def edges_within(self, x: float, y: float, radius: float
                     ) -> List[Tuple[int, float, float]]:
        """All edges whose distance to (x, y) is at most ``radius``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        cx, cy = self._query_cell(x, y)
        rings = int(np.ceil(radius / self.cell_size)) + 1
        seen: set[int] = set()
        eids: List[int] = []
        for ring in range(rings + 1):
            for cell in self._ring_cells(cx, cy, ring):
                for eid in self._cells.get(cell, ()):
                    if eid in seen:
                        continue
                    seen.add(eid)
                    eids.append(eid)
        if not eids:
            return []
        dists, ratios = self.project_batch(np.asarray(eids), x, y)
        results = [(eid, float(d), float(r))
                   for eid, d, r in zip(eids, dists, ratios)
                   if d <= radius]
        results.sort(key=lambda t: t[1])
        return results

    def _ring_cells(self, cx: int, cy: int, ring: int
                    ) -> List[Tuple[int, int]]:
        if ring == 0:
            return [(cx, cy)]
        cells = []
        for dx in range(-ring, ring + 1):
            cells.append((cx + dx, cy - ring))
            cells.append((cx + dx, cy + ring))
        for dy in range(-ring + 1, ring):
            cells.append((cx - ring, cy + dy))
            cells.append((cx + ring, cy + dy))
        return cells
