"""Shortest-path routing over road networks.

Used by the trip simulator (route choice), the map matcher (transition
probabilities need network distances between candidate edges) and the TEMP
baseline (not directly, but its neighbourhood queries reuse the spatial
index).  Provides static Dijkstra / A* over edge lengths and a
time-dependent variant whose edge costs come from the traffic model, plus a
stochastic perturbed-cost router so two trips over the same OD pair can take
different routes (the phenomenon motivating the paper's Example 1).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .graph import RoadNetwork


class NoPathError(Exception):
    """Raised when no route exists between the requested vertices."""


def dijkstra(net: RoadNetwork, source: int, target: int,
             edge_cost: Optional[Callable[[int], float]] = None
             ) -> Tuple[List[int], float]:
    """Shortest path from ``source`` to ``target`` vertex.

    Parameters
    ----------
    edge_cost:
        Cost of traversing an edge id; defaults to edge length.

    Returns
    -------
    (edge_ids, total_cost)
    """
    if edge_cost is None:
        edge_cost = lambda eid: net.edge(eid).length  # noqa: E731
    dist: Dict[int, float] = {source: 0.0}
    prev_edge: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = set()
    while heap:
        d, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        if v == target:
            return _reconstruct(net, prev_edge, source, target), d
        for edge in net.out_edges(v):
            cost = edge_cost(edge.edge_id)
            if cost < 0:
                raise ValueError("negative edge cost")
            nd = d + cost
            if nd < dist.get(edge.end, np.inf):
                dist[edge.end] = nd
                prev_edge[edge.end] = edge.edge_id
                heapq.heappush(heap, (nd, edge.end))
    raise NoPathError(f"no path from {source} to {target}")


def dijkstra_sssp(net: RoadNetwork, source: int,
                  edge_cost: Optional[Callable[[int], float]] = None
                  ) -> np.ndarray:
    """Single-source shortest-path distances to *every* vertex.

    Returns a ``(num_vertices,)`` float array with ``np.inf`` for
    unreachable vertices.  Distances agree exactly with point-to-point
    :func:`dijkstra` (same relaxation arithmetic, no early exit), which
    is what lets the vectorised map matcher cache one row per source
    vertex instead of one entry per vertex pair.
    """
    if edge_cost is None:
        edge_cost = lambda eid: net.edge(eid).length  # noqa: E731
    dist = np.full(net.num_vertices, np.inf)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = np.zeros(net.num_vertices, dtype=bool)
    while heap:
        d, v = heapq.heappop(heap)
        if visited[v]:
            continue
        visited[v] = True
        for edge in net.out_edges(v):
            cost = edge_cost(edge.edge_id)
            if cost < 0:
                raise ValueError("negative edge cost")
            nd = d + cost
            if nd < dist[edge.end]:
                dist[edge.end] = nd
                heapq.heappush(heap, (nd, edge.end))
    return dist


def astar(net: RoadNetwork, source: int, target: int,
          max_speed: Optional[float] = None) -> Tuple[List[int], float]:
    """A* over edge lengths with a Euclidean admissible heuristic.

    ``max_speed`` is unused for length costs but kept for symmetry with the
    time-dependent variant's heuristic scaling.
    """
    tx, ty = net.vertex(target).xy

    def heuristic(v: int) -> float:
        vert = net.vertex(v)
        return float(np.hypot(vert.x - tx, vert.y - ty))

    dist: Dict[int, float] = {source: 0.0}
    prev_edge: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    visited = set()
    while heap:
        _, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        if v == target:
            return _reconstruct(net, prev_edge, source, target), dist[v]
        for edge in net.out_edges(v):
            nd = dist[v] + edge.length
            if nd < dist.get(edge.end, np.inf):
                dist[edge.end] = nd
                prev_edge[edge.end] = edge.edge_id
                heapq.heappush(heap, (nd + heuristic(edge.end), edge.end))
    raise NoPathError(f"no path from {source} to {target}")


def time_dependent_dijkstra(
        net: RoadNetwork, source: int, target: int, depart_time: float,
        travel_time_fn: Callable[[int, float], float]
) -> Tuple[List[int], float]:
    """Earliest-arrival routing under time-varying edge travel times.

    ``travel_time_fn(edge_id, enter_time)`` returns the seconds needed to
    traverse the edge when entered at ``enter_time``.  Assumes the FIFO
    property (leaving later never means arriving earlier), which the traffic
    model satisfies.

    Returns (edge_ids, total_travel_seconds).
    """
    arrival: Dict[int, float] = {source: depart_time}
    prev_edge: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(depart_time, source)]
    visited = set()
    while heap:
        t, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        if v == target:
            return (_reconstruct(net, prev_edge, source, target),
                    t - depart_time)
        for edge in net.out_edges(v):
            dt = travel_time_fn(edge.edge_id, t)
            if dt <= 0:
                raise ValueError("travel time must be positive")
            at = t + dt
            if at < arrival.get(edge.end, np.inf):
                arrival[edge.end] = at
                prev_edge[edge.end] = edge.edge_id
                heapq.heappush(heap, (at, edge.end))
    raise NoPathError(f"no path from {source} to {target}")


def perturbed_route(net: RoadNetwork, source: int, target: int,
                    rng: np.random.Generator,
                    noise: float = 0.3) -> Tuple[List[int], float]:
    """Route under multiplicatively perturbed edge lengths.

    Samples one log-normal factor per edge and runs Dijkstra, modelling
    driver route choice diversity: repeated calls with different rng states
    return different (but sensible) routes for the same OD pair.
    """
    factors = np.exp(rng.normal(0.0, noise, size=net.num_edges))

    def cost(eid: int) -> float:
        return net.edge(eid).length * float(factors[eid])

    edges, _ = dijkstra(net, source, target, edge_cost=cost)
    true_length = sum(net.edge(e).length for e in edges)
    return edges, true_length


def path_length(net: RoadNetwork, edge_ids: List[int]) -> float:
    return sum(net.edge(eid).length for eid in edge_ids)


def is_connected_path(net: RoadNetwork, edge_ids: List[int]) -> bool:
    """True when consecutive edges share endpoints (a valid walk)."""
    for prev, nxt in zip(edge_ids, edge_ids[1:]):
        if net.edge(prev).end != net.edge(nxt).start:
            return False
    return True


def _reconstruct(net: RoadNetwork, prev_edge: Dict[int, int],
                 source: int, target: int) -> List[int]:
    path: List[int] = []
    v = target
    while v != source:
        eid = prev_edge[v]
        path.append(eid)
        v = net.edge(eid).start
    path.reverse()
    return path
