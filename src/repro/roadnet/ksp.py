"""Yen's k-shortest loopless paths.

Route-diversity analysis for the simulator and the Example 1 scenario
(the same OD pair served by several sensible routes).  Standard Yen's
algorithm on top of Dijkstra with edge/vertex exclusion.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from .graph import RoadNetwork
from .shortest_path import NoPathError, dijkstra


def _dijkstra_excluding(net: RoadNetwork, source: int, target: int,
                        banned_edges: Set[int], banned_vertices: Set[int],
                        edge_cost: Callable[[int], float]
                        ) -> Tuple[List[int], float]:
    dist = {source: 0.0}
    prev = {}
    heap = [(0.0, source)]
    visited = set()
    while heap:
        d, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        if v == target:
            path = []
            node = target
            while node != source:
                eid = prev[node]
                path.append(eid)
                node = net.edge(eid).start
            path.reverse()
            return path, d
        for edge in net.out_edges(v):
            if edge.edge_id in banned_edges or edge.end in banned_vertices:
                continue
            nd = d + edge_cost(edge.edge_id)
            if nd < dist.get(edge.end, np.inf):
                dist[edge.end] = nd
                prev[edge.end] = edge.edge_id
                heapq.heappush(heap, (nd, edge.end))
    raise NoPathError(f"no path from {source} to {target}")


def k_shortest_paths(net: RoadNetwork, source: int, target: int, k: int,
                     edge_cost: Optional[Callable[[int], float]] = None
                     ) -> List[Tuple[List[int], float]]:
    """Up to ``k`` loopless shortest paths, ascending by cost (Yen 1971)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if edge_cost is None:
        edge_cost = lambda eid: net.edge(eid).length  # noqa: E731
    first = dijkstra(net, source, target, edge_cost=edge_cost)
    paths: List[Tuple[List[int], float]] = [first]
    candidates: List[Tuple[float, List[int]]] = []
    seen = {tuple(first[0])}

    while len(paths) < k:
        prev_path = paths[-1][0]
        for i in range(len(prev_path)):
            # Spur node: start vertex of edge i of the previous path.
            spur_edge = net.edge(prev_path[i])
            spur_node = spur_edge.start
            root = prev_path[:i]
            root_cost = sum(edge_cost(e) for e in root)
            banned_edges: Set[int] = set()
            for path, _ in paths:
                if path[:i] == root and len(path) > i:
                    banned_edges.add(path[i])
            # Ban root vertices to keep paths loopless.
            banned_vertices = {net.edge(e).start for e in root}
            try:
                spur, spur_cost = _dijkstra_excluding(
                    net, spur_node, target, banned_edges,
                    banned_vertices, edge_cost)
            except NoPathError:
                continue
            total = root + spur
            key = tuple(total)
            if key in seen:
                continue
            seen.add(key)
            heapq.heappush(candidates, (root_cost + spur_cost, total))
        if not candidates:
            break
        cost, path = heapq.heappop(candidates)
        paths.append((path, cost))
    return paths


def route_diversity(net: RoadNetwork, source: int, target: int,
                    k: int = 3) -> float:
    """Mean pairwise Jaccard distance between the k shortest routes.

    0 means all routes identical; values near 1 mean disjoint
    alternatives — the regime where the paper's Example 1 matters most.
    """
    paths = k_shortest_paths(net, source, target, k)
    if len(paths) < 2:
        return 0.0
    sets = [set(p) for p, _ in paths]
    distances = []
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            union = sets[i] | sets[j]
            inter = sets[i] & sets[j]
            distances.append(1.0 - len(inter) / len(union))
    return float(np.mean(distances))
