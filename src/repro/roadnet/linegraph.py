"""Line-graph conversion of the road network (paper Figure 4).

Graph embedding methods (DeepWalk, node2vec, LINE) embed *nodes*, while
DeepOD needs embeddings for *edges* (road segments).  The paper therefore
converts the road network into a new graph where each node stands for a road
segment, and an edge <v_ik, v_kj> exists whenever segment <v_i, v_k> can be
followed by segment <v_k, v_j>.  Link weights are the co-occurrence counts
of the two segments on the same historical trajectory (e.g. the weight of
<v46, v63> is 2 when both segments are co-passed by two trajectories), which
shape the random-walk transition probabilities of the embedding methods.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .graph import RoadNetwork


class CSRAdjacency(NamedTuple):
    """Flat CSR view of a digraph: row ``u`` owns slots
    ``indptr[u]:indptr[u+1]`` of ``indices``/``weights``, with columns
    sorted ascending within each row.  This is the array substrate the
    vectorised embedding engine (``repro.embedding``) samples from."""

    indptr: np.ndarray     # (num_nodes + 1,) int64
    indices: np.ndarray    # (num_edges,) int64
    weights: np.ndarray    # (num_edges,) float64

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def out_degree(self) -> np.ndarray:
        return np.diff(self.indptr)


class WeightedDigraph:
    """Minimal adjacency-list weighted digraph consumed by repro.embedding."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("graph needs at least one node")
        self.num_nodes = num_nodes
        self._adj: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
        self._csr: Optional[CSRAdjacency] = None

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise IndexError(f"edge ({u}, {v}) out of range")
        if weight < 0:
            raise ValueError("edge weight must be non-negative")
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        self._csr = None

    def set_weight(self, u: int, v: int, weight: float) -> None:
        self._adj[u][v] = weight
        self._csr = None

    def to_csr(self) -> CSRAdjacency:
        """Export (and cache) the adjacency as flat CSR arrays.

        The cache is invalidated by ``add_edge``/``set_weight``, so repeat
        embedding runs over an unchanged graph pay the conversion once.
        Raises on NaN/inf/negative weights — silent propagation of bad
        weights into sampling tables is how distributions go subtly wrong.
        """
        if self._csr is not None:
            return self._csr
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []
        for u, nbrs in enumerate(self._adj):
            indptr[u + 1] = indptr[u] + len(nbrs)
            if nbrs:
                c = np.fromiter(nbrs.keys(), dtype=np.int64, count=len(nbrs))
                w = np.fromiter(nbrs.values(), dtype=np.float64,
                                count=len(nbrs))
                order = np.argsort(c)
                cols.append(c[order])
                vals.append(w[order])
        indices = (np.concatenate(cols) if cols
                   else np.empty(0, dtype=np.int64))
        weights = (np.concatenate(vals) if vals
                   else np.empty(0, dtype=np.float64))
        if weights.size and not np.isfinite(weights).all():
            raise ValueError("graph weights must be finite (got NaN/inf)")
        if weights.size and (weights < 0).any():
            raise ValueError("graph weights must be non-negative")
        self._csr = CSRAdjacency(indptr, indices, weights)
        return self._csr

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        return list(self._adj[u].items())

    def weight(self, u: int, v: int) -> float:
        return self._adj[u].get(v, 0.0)

    def out_degree(self, u: int) -> int:
        return len(self._adj[u])

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj)

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                yield (u, v, w)


def build_line_graph(net: RoadNetwork,
                     trajectories: Sequence[Sequence[int]] = (),
                     smoothing: float = 1.0) -> WeightedDigraph:
    """Convert a road network into its segment line graph (Figure 4).

    Parameters
    ----------
    net:
        The road network; the output graph has one node per edge of ``net``.
    trajectories:
        Historical trajectories as edge-id sequences.  Consecutive pairs
        contribute co-occurrence counts to the corresponding line-graph link
        weights.
    smoothing:
        Base weight added to every structural link so segments never
        traversed by any trajectory still participate in random walks.

    Returns
    -------
    WeightedDigraph with ``net.num_edges`` nodes.
    """
    graph = WeightedDigraph(net.num_edges)
    # Structural links: e1 -> e2 when e1's end vertex is e2's start vertex.
    for edge in net.edges():
        for successor in net.successors(edge.edge_id):
            if successor.edge_id == edge.edge_id:
                continue
            graph.set_weight(edge.edge_id, successor.edge_id, smoothing)

    # Co-occurrence counts from historical trajectories.
    counts: Dict[Tuple[int, int], float] = defaultdict(float)
    for traj in trajectories:
        for prev, nxt in zip(traj, traj[1:]):
            counts[(prev, nxt)] += 1.0
    for (prev, nxt), count in counts.items():
        expected_end = net.edge(prev).end
        if net.edge(nxt).start != expected_end:
            raise ValueError(
                f"trajectory step {prev}->{nxt} is not road-connected")
        graph.set_weight(prev, nxt, smoothing + count)
    return graph


def temporal_graph_to_digraph(edges: Iterable[Tuple[int, int]],
                              num_nodes: int) -> WeightedDigraph:
    """Wrap an explicit (u, v) edge list as a WeightedDigraph."""
    graph = WeightedDigraph(num_nodes)
    for u, v in edges:
        graph.add_edge(u, v, 1.0)
    return graph
