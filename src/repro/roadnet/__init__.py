"""Road-network substrate: graphs, generators, routing, spatial indexing
and the line-graph conversion of paper Figure 4."""

from .graph import Edge, RoadNetwork, Vertex
from .generators import grid_city
from .shortest_path import (
    NoPathError, astar, dijkstra, is_connected_path, path_length,
    perturbed_route, time_dependent_dijkstra,
)
from .spatial_index import SpatialIndex
from .linegraph import (
    CSRAdjacency, WeightedDigraph, build_line_graph,
    temporal_graph_to_digraph,
)
from .ksp import k_shortest_paths, route_diversity

__all__ = [
    "Edge", "RoadNetwork", "Vertex",
    "grid_city",
    "NoPathError", "astar", "dijkstra", "is_connected_path", "path_length",
    "perturbed_route", "time_dependent_dijkstra",
    "SpatialIndex",
    "CSRAdjacency", "WeightedDigraph", "build_line_graph",
    "temporal_graph_to_digraph",
    "k_shortest_paths", "route_diversity",
]
