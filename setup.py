"""Setup shim for environments whose setuptools predates PEP 660 editable
installs (the offline box has no wheel package, so ``pip install -e .`` falls
back to this legacy path)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DeepOD: Effective Travel Time Estimation "
        "(SIGMOD 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
